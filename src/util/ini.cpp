#include "util/ini.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace adaptviz {

IniDocument IniDocument::parse(const std::string& text) {
  IniDocument doc;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string s = trim(line);
    if (s.empty() || s[0] == '#' || s[0] == ';') continue;
    if (s.front() == '[') {
      if (s.back() != ']' || s.size() < 3) {
        throw std::runtime_error("ini: malformed section header at line " +
                                 std::to_string(lineno));
      }
      section = trim(s.substr(1, s.size() - 2));
      doc.sections_[section];  // allow empty sections
      continue;
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("ini: missing '=' at line " +
                               std::to_string(lineno));
    }
    const std::string key = trim(s.substr(0, eq));
    const std::string value = trim(s.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("ini: empty key at line " +
                               std::to_string(lineno));
    }
    doc.sections_[section][key] = value;
  }
  return doc;
}

IniDocument IniDocument::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ini: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string IniDocument::str() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [section, kvs] : sections_) {
    if (!first) out << "\n";
    first = false;
    if (!section.empty()) out << "[" << section << "]\n";
    for (const auto& [k, v] : kvs) out << k << " = " << v << "\n";
  }
  return out.str();
}

void IniDocument::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("ini: cannot write " + tmp);
    out << str();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("ini: rename failed for " + path);
  }
}

void IniDocument::set(const std::string& section, const std::string& key,
                      const std::string& value) {
  sections_[section][key] = value;
}

void IniDocument::set_double(const std::string& section, const std::string& key,
                             double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  set(section, key, buf);
}

void IniDocument::set_int(const std::string& section, const std::string& key,
                          long value) {
  set(section, key, std::to_string(value));
}

void IniDocument::set_bool(const std::string& section, const std::string& key,
                           bool value) {
  set(section, key, value ? "true" : "false");
}

std::optional<std::string> IniDocument::get(const std::string& section,
                                            const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::string IniDocument::get_or(const std::string& section,
                                const std::string& key,
                                const std::string& fallback) const {
  auto v = get(section, key);
  return v ? *v : fallback;
}

std::optional<double> IniDocument::get_double(const std::string& section,
                                              const std::string& key) const {
  auto v = get(section, key);
  if (!v) return std::nullopt;
  try {
    size_t pos = 0;
    double d = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return d;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: [" + section + "] " + key +
                             " is not a number: '" + *v + "'");
  }
}

std::optional<long> IniDocument::get_int(const std::string& section,
                                         const std::string& key) const {
  auto v = get(section, key);
  if (!v) return std::nullopt;
  try {
    size_t pos = 0;
    long n = std::stol(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return n;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: [" + section + "] " + key +
                             " is not an integer: '" + *v + "'");
  }
}

std::optional<bool> IniDocument::get_bool(const std::string& section,
                                          const std::string& key) const {
  auto v = get(section, key);
  if (!v) return std::nullopt;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::runtime_error("ini: [" + section + "] " + key +
                           " is not a boolean: '" + *v + "'");
}

bool IniDocument::has_section(const std::string& section) const {
  return sections_.contains(section);
}

}  // namespace adaptviz
