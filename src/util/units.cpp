#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace adaptviz {

std::string to_string(Bytes b) {
  const double v = b.as_double();
  char buf[64];
  if (std::fabs(v) >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.2f TB", v / 1e12);
  } else if (std::fabs(v) >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB", v / 1e9);
  } else if (std::fabs(v) >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB", v / 1e6);
  } else if (std::fabs(v) >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f KB", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(b.count()));
  }
  return buf;
}

std::string to_string(Bandwidth b) {
  const double mbps = b.megabits_per_sec();
  char buf[64];
  if (mbps >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.2f Gbps", mbps / 1000.0);
  } else if (mbps >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f Mbps", mbps);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f Kbps", mbps * 1000.0);
  }
  return buf;
}

std::string hh_mm(WallSeconds t) {
  const long total_min = std::lround(t.seconds() / 60.0);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02ld:%02ld", total_min / 60,
                total_min % 60);
  return buf;
}

}  // namespace adaptviz
