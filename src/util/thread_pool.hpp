// Persistent worker-pool runtime for the compute hot paths.
//
// Every parallel region in the repo used to spawn and join fresh
// std::threads per call (six pool spawns per shallow-water step: three
// tendency regions plus three RK3 update sweeps), which caps scaling and
// inflates the timing variance the decision algorithms consume. This pool
// keeps a fixed set of long-lived workers parked on a condition variable
// and hands them fork-join jobs:
//
//   ThreadPool::shared().parallel_for(0, n, threads, body);
//
// Scheduling:
//  * parallel_for — static: the range is cut into exactly
//    min(threads, n) contiguous bands of ceil(n/W) rows, the same
//    partition the old spawn-per-call parallel_for_rows used. Each band
//    is claimed once; which worker runs which band is unspecified, but
//    bands are disjoint and the boundaries depend only on (range,
//    threads), so results are bitwise identical to the serial loop for
//    any worker count and any pool size.
//  * parallel_for_chunked — dynamic: workers grab fixed-size chunks off
//    an atomic cursor; use it when per-row cost is uneven (streamline
//    tracing, batches of whole-frame renders).
//
// The calling thread always participates, so `threads == 1` (or a pool
// built with zero workers) degenerates to the plain serial loop with no
// synchronization. Nested calls — a body that itself calls into the pool,
// from a pool worker or from the thread that issued the outer region —
// run inline serially rather than deadlocking. Concurrent top-level
// callers serialize on the pool (one fork-join job at a time).
//
// The callable is passed by non-owning reference (RangeFnRef): no
// std::function allocation on the hot path.
//
// Run-context propagation: every worker lane of a fork-join region runs
// under the *submitting* thread's run context (runtime/run_context.hpp),
// so instrumentation fired inside a region lands in the submitting
// experiment's metrics — never in another experiment that happens to share
// the pool. The same applies to submitted tasks (below).
//
// Task submission (`submit`): whole units of work — e.g. one experiment of
// a campaign — run as pool tasks on the worker threads, draining a FIFO
// queue. Tasks run with in-region semantics: any parallel_for a task issues
// runs inline on its lane (deterministically — the static partition makes
// lane count invisible to results), so K tasks progress independently
// without nested fork-join deadlocks. Do not wait() on a task's handle
// from inside another task on the same pool: with every worker occupied
// that wait can never be satisfied.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/run_context.hpp"

namespace adaptviz {

/// Non-owning reference to a `void(std::size_t begin, std::size_t end)`
/// callable — the referenced object must outlive the call (true for a
/// fork-join region, where the caller blocks until the job completes).
class RangeFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, RangeFnRef>>>
  RangeFnRef(F&& f) noexcept  // NOLINT: implicit by design
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, std::size_t b, std::size_t e) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(b, e);
        }) {}

  void operator()(std::size_t begin, std::size_t end) const {
    call_(ctx_, begin, end);
  }

 private:
  void* ctx_;
  void (*call_)(void*, std::size_t, std::size_t);
};

class ThreadPool {
 public:
  /// `workers` long-lived helper threads (the caller of a parallel region
  /// participates too, so total parallelism is workers + 1). Zero workers
  /// is valid: every region runs inline on the caller.
  explicit ThreadPool(int workers = default_worker_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Helper threads + the participating caller.
  [[nodiscard]] int worker_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Process-wide lazily-constructed pool sized for the hardware. All
  /// subsystems (dynamics, rendering, transport) share it; per-call
  /// `threads` arguments cap how much of it a region uses.
  static ThreadPool& shared();

  /// hardware_concurrency - 1 helpers (the caller is the final lane).
  static int default_worker_count();

  /// Fork-join over [begin, end) with the deterministic static partition:
  /// min(threads, n) bands of ceil(n / W). threads <= 1, a nested call,
  /// or a tiny range runs body(begin, end) inline.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, int threads,
                    Body&& body) {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    const std::size_t lanes =
        std::min<std::size_t>(static_cast<std::size_t>(
                                  threads > 1 ? threads : 1),
                              n);
    if (lanes <= 1 || in_parallel_region()) {
      body(begin, end);
      return;
    }
    const std::size_t band = (n + lanes - 1) / lanes;
    run(begin, end, band, static_cast<int>(lanes) - 1, RangeFnRef(body));
  }

  /// Blocks until the task has finished. A default-constructed handle (or
  /// one whose task already ran) returns immediately.
  class TaskHandle {
   public:
    TaskHandle() = default;
    void wait();
    [[nodiscard]] bool valid() const { return state_ != nullptr; }

   private:
    friend class ThreadPool;
    struct State {
      std::mutex mutex;
      std::condition_variable cv;
      bool done = false;
    };
    explicit TaskHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  /// Enqueues `task` to run on a worker thread under the submitting
  /// thread's run context (captured now, installed for the task's span).
  /// FIFO order; at most `workers` tasks run concurrently. On a pool with
  /// zero workers the task runs inline before submit returns. Tasks still
  /// queued when the pool is destroyed are discarded (their handles
  /// unblock).
  TaskHandle submit(std::function<void()> task);

  /// Fork-join with dynamic chunk scheduling: up to `threads` lanes grab
  /// `chunk`-sized pieces off a shared cursor. Chunk boundaries are
  /// deterministic; claim order is not — use only when the body's writes
  /// are disjoint per index (which every renderer/solver body here is).
  template <typename Body>
  void parallel_for_chunked(std::size_t begin, std::size_t end, int threads,
                            std::size_t chunk, Body&& body) {
    if (end <= begin) return;
    if (chunk == 0) chunk = 1;
    const std::size_t n = end - begin;
    const std::size_t pieces = (n + chunk - 1) / chunk;
    const std::size_t lanes = std::min<std::size_t>(
        static_cast<std::size_t>(threads > 1 ? threads : 1), pieces);
    if (lanes <= 1 || in_parallel_region()) {
      body(begin, end);
      return;
    }
    run(begin, end, chunk, static_cast<int>(lanes) - 1, RangeFnRef(body));
  }

 private:
  // One fork-join job: workers fetch-add `next` by `chunk` until the
  // cursor passes `end`. Lives inside the pool so a late-waking worker
  // never dereferences a dead stack frame. `context` is the submitting
  // thread's run context, installed on every helper lane for the span of
  // its borrowed work (the submitter keeps it alive while it blocks).
  struct Job {
    RangeFnRef body{[](std::size_t, std::size_t) {}};
    std::size_t end = 0;
    std::size_t chunk = 0;
    RunContext* context = nullptr;
    std::atomic<std::size_t> next{0};
  };

  // One queued task: the closure, the context to run it under, and the
  // completion state its handle waits on.
  struct PendingTask {
    std::function<void()> fn;
    RunContext* context = nullptr;
    std::shared_ptr<TaskHandle::State> state;
  };

  void run(std::size_t begin, std::size_t end, std::size_t chunk,
           int helper_tickets, RangeFnRef body);
  void work(RangeFnRef body, std::size_t end, std::size_t chunk);
  void worker_loop();
  static bool& in_parallel_region();

  std::atomic<int> queue_depth_{0};  // top-level callers waiting or running
  std::mutex run_mutex_;  // serializes top-level fork-join jobs
  std::mutex mutex_;      // guards the fields below
  std::condition_variable wake_cv_;  // workers park here
  std::condition_variable done_cv_;  // the caller waits here
  Job job_;
  std::deque<PendingTask> tasks_;  // submitted tasks, FIFO
  std::uint64_t generation_ = 0;  // bumped per job; wakes parked workers
  int tickets_ = 0;               // helper lanes still allowed to join
  int active_ = 0;                // helpers currently inside work()
  bool job_active_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adaptviz
