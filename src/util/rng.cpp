#include "util/rng.hpp"

#include <cmath>

namespace adaptviz {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::bounded(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

}  // namespace adaptviz
