#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace adaptviz {

std::string trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace adaptviz
