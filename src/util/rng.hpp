// Deterministic pseudo-random number generation (xoshiro256**).
//
// Experiments must be bit-reproducible across runs, so every stochastic
// component (bandwidth fluctuation, machine-time noise, synthetic analysis
// perturbations) owns its own seeded Rng rather than sharing global state.
#pragma once

#include <cstdint>

namespace adaptviz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (polar form).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t bounded(std::uint64_t n);

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace adaptviz
