#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace adaptviz {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* component, const char* fmt, ...) {
  if (level < g_level.load()) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s] %-12s %s\n", level_name(level), component, msg);
}

}  // namespace adaptviz
