#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace adaptviz {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

}  // namespace

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* component, const char* fmt, ...) {
  // Per-run overrides ride the calling thread's context; absent one, the
  // process-wide defaults apply (seed behavior, byte for byte).
  const RunContext* context = current_run_context();
  const LogLevel min_level = context != nullptr && context->has_log_level
                                 ? context->log_level
                                 : g_level.load();
  if (level < min_level) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  va_end(ap);
  LogSink* sink = context != nullptr ? context->log_sink : nullptr;
  if (sink != nullptr) {
    sink->write(level, component, msg);
  } else if (context != nullptr && !context->run_label.empty()) {
    // Label the line with its run so interleaved campaign runs / dispatch
    // workers sharing one stderr stay attributable.
    std::fprintf(stderr, "[%s] %-12s [%s] %s\n", log_level_name(level),
                 component, context->run_label.c_str(), msg);
  } else {
    std::fprintf(stderr, "[%s] %-12s %s\n", log_level_name(level), component,
                 msg);
  }
}

FileLogSink::FileLogSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("FileLogSink: cannot open '" + path + "'");
  }
}

FileLogSink::~FileLogSink() { std::fclose(file_); }

void FileLogSink::write(LogLevel level, const char* component,
                        const char* message) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "[%s] %-12s %s\n", log_level_name(level), component,
               message);
}

void MemoryLogSink::write(LogLevel level, const char* component,
                          const char* message) {
  std::string line = "[";
  line += log_level_name(level);
  line += "] ";
  line += component;
  line += ' ';
  line += message;
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

std::vector<std::string> MemoryLogSink::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

}  // namespace adaptviz
