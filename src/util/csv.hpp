// CSV table writer for bench/experiment output.
//
// Every figure-reproduction bench emits its series through CsvTable so the
// numbers the paper plots can be diffed or re-plotted directly.
#pragma once

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace adaptviz {

class CsvTable {
 public:
  using Cell = std::variant<std::string, double, long>;

  explicit CsvTable(std::vector<std::string> columns);

  /// Appends a row; throws std::invalid_argument on width mismatch.
  void add_row(std::vector<Cell> row);

  [[nodiscard]] size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }

  /// Writes header + rows. Strings containing separators are quoted.
  void write(std::ostream& out) const;
  void save(const std::string& path) const;
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace adaptviz
