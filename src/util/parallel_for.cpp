#include "util/parallel_for.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace adaptviz {

void parallel_for_rows(
    std::size_t begin, std::size_t end, int threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::shared().parallel_for(begin, end, threads, body);
}

void parallel_for_rows_spawn(
    std::size_t begin, std::size_t end, int threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t workers =
      std::min<std::size_t>(std::max(threads, 1), n);
  if (workers <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t band = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    const std::size_t b = begin + w * band;
    const std::size_t e = std::min(end, b + band);
    if (b >= e) break;
    pool.emplace_back([&body, b, e] { body(b, e); });
  }
  // The calling thread takes the first band.
  body(begin, std::min(end, begin + band));
  for (std::thread& t : pool) t.join();
}

}  // namespace adaptviz
