// Strong unit types used throughout the framework.
//
// The system lives on two independent time axes, which the paper is careful
// to distinguish (its footnote 1: "Simulated time units denote the time that
// is simulated and does not represent the execution time"):
//
//  * WallSeconds — execution ("wall clock") time. In this repository wall
//    time is *virtual*: it is advanced by the discrete-event kernel in
//    resources/event_queue.hpp, so a 26-hour experiment replays in seconds.
//  * SimSeconds — simulated weather time, i.e. the time axis of the cyclone.
//
// Mixing the two axes is a unit error; making them distinct types turns that
// error into a compile failure.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace adaptviz {

/// Byte counts and storage sizes. Signed so that deltas are representable.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t n) : n_(n) {}

  [[nodiscard]] constexpr std::int64_t count() const { return n_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(n_);
  }

  static constexpr Bytes kilobytes(double k) {
    return Bytes(static_cast<std::int64_t>(k * 1000.0));
  }
  static constexpr Bytes megabytes(double m) {
    return Bytes(static_cast<std::int64_t>(m * 1000.0 * 1000.0));
  }
  static constexpr Bytes gigabytes(double g) {
    return Bytes(static_cast<std::int64_t>(g * 1000.0 * 1000.0 * 1000.0));
  }
  static constexpr Bytes terabytes(double t) {
    return Bytes(static_cast<std::int64_t>(t * 1e12));
  }

  [[nodiscard]] constexpr double gb() const { return as_double() / 1e9; }
  [[nodiscard]] constexpr double mb() const { return as_double() / 1e6; }

  constexpr Bytes& operator+=(Bytes o) {
    n_ += o.n_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    n_ -= o.n_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.n_ + b.n_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.n_ - b.n_);
  }
  friend constexpr Bytes operator*(Bytes a, double s) {
    return Bytes(static_cast<std::int64_t>(static_cast<double>(a.n_) * s));
  }
  friend constexpr Bytes operator*(double s, Bytes a) { return a * s; }
  friend constexpr double operator/(Bytes a, Bytes b) {
    return a.as_double() / b.as_double();
  }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

 private:
  std::int64_t n_ = 0;
};

/// Network / disk bandwidth in bytes per second (decimal units).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bytes_per_second)
      : bps_(bytes_per_second) {}

  /// Constructors mirroring how the paper quotes link speeds (bits/s).
  static constexpr Bandwidth bits_per_second(double b) {
    return Bandwidth(b / 8.0);
  }
  static constexpr Bandwidth kbps(double k) {
    return bits_per_second(k * 1000.0);
  }
  static constexpr Bandwidth mbps(double m) {
    return bits_per_second(m * 1000.0 * 1000.0);
  }
  static constexpr Bandwidth gbps(double g) { return bits_per_second(g * 1e9); }
  static constexpr Bandwidth bytes_per_second(double b) {
    return Bandwidth(b);
  }
  static constexpr Bandwidth megabytes_per_second(double m) {
    return Bandwidth(m * 1e6);
  }
  static constexpr Bandwidth gigabytes_per_second(double g) {
    return Bandwidth(g * 1e9);
  }

  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double megabits_per_sec() const {
    return bps_ * 8.0 / 1e6;
  }
  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;
  friend constexpr Bandwidth operator*(Bandwidth b, double s) {
    return Bandwidth(b.bps_ * s);
  }

 private:
  double bps_ = 0.0;
};

namespace detail {

/// Shared implementation of a double-backed duration with a phantom tag.
template <class Tag>
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double s) : s_(s) {}

  static constexpr Seconds minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Seconds hours(double h) { return Seconds(h * 3600.0); }
  static constexpr Seconds days(double d) { return Seconds(d * 86400.0); }

  [[nodiscard]] constexpr double seconds() const { return s_; }
  [[nodiscard]] constexpr double as_minutes() const { return s_ / 60.0; }
  [[nodiscard]] constexpr double as_hours() const { return s_ / 3600.0; }

  constexpr Seconds& operator+=(Seconds o) {
    s_ += o.s_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds o) {
    s_ -= o.s_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds(a.s_ + b.s_);
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds(a.s_ - b.s_);
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds(a.s_ * k);
  }
  friend constexpr Seconds operator*(double k, Seconds a) { return a * k; }
  friend constexpr double operator/(Seconds a, Seconds b) {
    return a.s_ / b.s_;
  }
  friend constexpr Seconds operator/(Seconds a, double k) {
    return Seconds(a.s_ / k);
  }
  friend constexpr auto operator<=>(Seconds, Seconds) = default;

 private:
  double s_ = 0.0;
};

struct WallTag {};
struct SimTag {};

}  // namespace detail

/// Execution (virtual wall-clock) duration / instant since experiment start.
using WallSeconds = detail::Seconds<detail::WallTag>;
/// Simulated weather-time duration / instant since the model's start epoch.
using SimSeconds = detail::Seconds<detail::SimTag>;

/// Amount of data moved by `bw` over `dt` of wall time.
constexpr Bytes transferable(Bandwidth bw, WallSeconds dt) {
  return Bytes(static_cast<std::int64_t>(bw.bytes_per_sec() * dt.seconds()));
}

/// Wall time needed to move `size` at `bw`. `bw` must be positive.
constexpr WallSeconds transfer_time(Bytes size, Bandwidth bw) {
  return WallSeconds(size.as_double() / bw.bytes_per_sec());
}

/// Human-readable renderings, e.g. "1.5 GB", "56.0 Mbps", "02:36".
std::string to_string(Bytes b);
std::string to_string(Bandwidth b);
std::string hh_mm(WallSeconds t);

}  // namespace adaptviz
