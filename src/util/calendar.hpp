// Conversion between the model's SimSeconds axis and calendar labels.
//
// The paper's Aila experiment simulates 22-May-2009 18:00 UTC through
// 25-May-2009 06:00 UTC; its figures label the simulation axis with strings
// like "23-May 09:00". CalendarEpoch reproduces those labels so bench output
// can be compared line-for-line with the paper's plots.
#pragma once

#include <string>

#include "util/units.hpp"

namespace adaptviz {

/// A fixed calendar anchor for SimSeconds==0, e.g. 22-May 18:00.
class CalendarEpoch {
 public:
  /// `day_of_may` is the May-2009 day of month; hours/minutes are UTC.
  CalendarEpoch(int day_of_may, int hour, int minute = 0);

  /// Default epoch used by the Aila scenario: 22-May 18:00.
  static CalendarEpoch aila_start() { return {22, 18, 0}; }

  /// Renders `t` past the epoch as "23-May 09:00".
  [[nodiscard]] std::string label(SimSeconds t) const;

  /// Inverse of label() for (day, hour, minute) triples in May 2009.
  [[nodiscard]] SimSeconds at(int day_of_may, int hour, int minute = 0) const;

 private:
  long epoch_minutes_ = 0;  // minutes since 01-May 00:00
};

}  // namespace adaptviz
