#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace adaptviz {

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(0, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  std::deque<PendingTask> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    orphaned.swap(tasks_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Discarded tasks never run, but their handles must not hang.
  for (PendingTask& task : orphaned) {
    {
      std::lock_guard<std::mutex> lock(task.state->mutex);
      task.state->done = true;
    }
    task.state->cv.notify_all();
  }
}

void ThreadPool::TaskHandle::wait() {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

ThreadPool::TaskHandle ThreadPool::submit(std::function<void()> task) {
  auto state = std::make_shared<TaskHandle::State>();
  if (workers_.empty()) {
    // No worker threads to hand the task to: run it inline. The submitting
    // thread's context is already installed, so semantics match.
    task();
    state->done = true;
    return TaskHandle(std::move(state));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(
        PendingTask{std::move(task), current_run_context(), state});
  }
  wake_cv_.notify_all();
  return TaskHandle(std::move(state));
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) - 1 : 0;
}

bool& ThreadPool::in_parallel_region() {
  static thread_local bool flag = false;
  return flag;
}

void ThreadPool::run(std::size_t begin, std::size_t end, std::size_t chunk,
                     int helper_tickets, RangeFnRef body) {
  // Capture the bundle once so the increment/decrement below stay
  // symmetric even if observability is swapped mid-region.
  obs::Observability* const o = obs::current();
  // Regions fire at tens of kilohertz on the solver path: the registry
  // lookups are cached per caller thread (obs.hpp, hot-path handles).
  static thread_local obs::HotGauge depth_peak("pool.queue_depth_peak");
  static thread_local obs::HotCounter regions("pool.regions");
  static thread_local obs::HotHistogram queue_wait("pool.queue_wait_seconds");
  static thread_local obs::HotHistogram region_time("pool.region_seconds");
  double enqueued = 0.0;
  if (o != nullptr) {
    enqueued = o->tracer().host_now();
    const int depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    depth_peak.resolve(o)->set_max(depth);
  }
  // One fork-join job at a time; a second top-level caller parks here.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  double started = 0.0;
  if (o != nullptr) {
    started = o->tracer().host_now();
    regions.resolve(o)->add(1);
    queue_wait.resolve(o)->observe(started - enqueued);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.body = body;
    job_.end = end;
    job_.chunk = chunk;
    job_.context = current_run_context();
    job_.next.store(begin, std::memory_order_relaxed);
    tickets_ = std::min(helper_tickets, static_cast<int>(workers_.size()));
    job_active_ = true;
    ++generation_;
  }
  wake_cv_.notify_all();

  // The caller is a lane too: claim bands until the cursor runs out.
  in_parallel_region() = true;
  work(body, end, chunk);
  in_parallel_region() = false;

  // All bands are claimed once the caller's loop exits (the cursor is
  // monotonic); wait for the helpers still finishing theirs. Helpers that
  // wake late see an exhausted cursor and never join.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_active_ = false;
  if (o != nullptr) {
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    region_time.resolve(o)->observe(o->tracer().host_now() - started);
  }
}

void ThreadPool::work(RangeFnRef body, std::size_t end, std::size_t chunk) {
  for (;;) {
    const std::size_t b = job_.next.fetch_add(chunk, std::memory_order_relaxed);
    if (b >= end) break;
    body(b, std::min(end, b + chunk));
  }
}

void ThreadPool::worker_loop() {
  in_parallel_region() = true;  // nested calls from a worker run inline
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen || !tasks_.empty(); });
    if (stop_) return;
    if (generation_ != seen) {
      seen = generation_;
      if (job_active_ && tickets_ > 0 &&
          job_.next.load(std::memory_order_relaxed) < job_.end) {
        --tickets_;
        ++active_;
        const RangeFnRef body = job_.body;
        const std::size_t end = job_.end;
        const std::size_t chunk = job_.chunk;
        RunContext* const context = job_.context;
        lock.unlock();
        {
          // The lane borrows the submitting experiment's context: metrics
          // fired by the body land in that experiment's bundle.
          ScopedRunContext scope(context);
          work(body, end, chunk);
        }
        lock.lock();
        if (--active_ == 0) done_cv_.notify_all();
        continue;
      }
    }
    if (!tasks_.empty()) {
      PendingTask task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      {
        ScopedRunContext scope(task.context);
        task.fn();
      }
      {
        std::lock_guard<std::mutex> state_lock(task.state->mutex);
        task.state->done = true;
      }
      task.state->cv.notify_all();
      task.fn = nullptr;  // release the closure before re-taking the lock
      lock.lock();
    }
  }
}

}  // namespace adaptviz
