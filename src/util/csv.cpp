#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adaptviz {
namespace {

void write_cell(std::ostream& out, const CsvTable::Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    const bool needs_quote = s->find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      out << *s;
      return;
    }
    out << '"';
    for (char c : *s) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  } else if (const auto* d = std::get_if<double>(&cell)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    out << buf;
  } else {
    out << std::get<long>(cell);
  }
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("csv: table needs at least one column");
  }
}

void CsvTable::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("csv: row width " + std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(row));
}

void CsvTable::write(std::ostream& out) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out << ',';
    out << columns_[i];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      write_cell(out, row[i]);
    }
    out << '\n';
  }
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("csv: cannot write " + path);
  write(out);
}

std::string CsvTable::str() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace adaptviz
