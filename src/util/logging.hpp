// Minimal leveled logger.
//
// The framework's daemons (application manager, job handler, sender,
// receiver) narrate their actions through this logger; experiments lower the
// level to Warn so bench output stays machine-parsable.
#pragma once

#include <cstdarg>
#include <string>

namespace adaptviz {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. `component` names the emitting daemon/module.
void log(LogLevel level, const char* component, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

#define ADAPTVIZ_LOG_DEBUG(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kDebug, component, __VA_ARGS__)
#define ADAPTVIZ_LOG_INFO(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kInfo, component, __VA_ARGS__)
#define ADAPTVIZ_LOG_WARN(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kWarn, component, __VA_ARGS__)
#define ADAPTVIZ_LOG_ERROR(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kError, component, __VA_ARGS__)

}  // namespace adaptviz
