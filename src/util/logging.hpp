// Minimal leveled logger.
//
// The framework's daemons (application manager, job handler, sender,
// receiver) narrate their actions through this logger; experiments lower the
// level to Warn so bench output stays machine-parsable.
//
// Level and destination resolve per run: when the calling thread has a run
// context installed (runtime/run_context.hpp), its log_level/log_sink
// override the process-wide defaults, so K concurrent campaign runs can
// log at different levels into different files without interleaving on
// stderr. With no context installed the historical behavior is unchanged:
// the process-wide level gates, lines go to stderr.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/run_context.hpp"  // LogLevel, LogSink

namespace adaptviz {

/// Process-wide minimum level; messages below it are dropped. A run
/// context with has_log_level set overrides this for its threads.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Fixed-width level tag ("WARN " etc.) for sink implementations.
const char* log_level_name(LogLevel level);

/// printf-style logging. `component` names the emitting daemon/module.
void log(LogLevel level, const char* component, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

/// Appends each run's lines to its own file — the campaign runner gives
/// every concurrent experiment one of these so logs never interleave.
class FileLogSink : public LogSink {
 public:
  /// Truncates/creates `path`; throws std::runtime_error if unwritable.
  explicit FileLogSink(const std::string& path);
  ~FileLogSink() override;
  FileLogSink(const FileLogSink&) = delete;
  FileLogSink& operator=(const FileLogSink&) = delete;

  void write(LogLevel level, const char* component,
             const char* message) override;

 private:
  std::mutex mutex_;
  std::FILE* file_;
};

/// Collects formatted lines in memory (tests, per-run capture).
class MemoryLogSink : public LogSink {
 public:
  void write(LogLevel level, const char* component,
             const char* message) override;

  [[nodiscard]] std::vector<std::string> lines() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

#define ADAPTVIZ_LOG_DEBUG(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kDebug, component, __VA_ARGS__)
#define ADAPTVIZ_LOG_INFO(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kInfo, component, __VA_ARGS__)
#define ADAPTVIZ_LOG_WARN(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kWarn, component, __VA_ARGS__)
#define ADAPTVIZ_LOG_ERROR(component, ...) \
  ::adaptviz::log(::adaptviz::LogLevel::kError, component, __VA_ARGS__)

}  // namespace adaptviz
