// INI-style key/value document, used for the *application configuration
// file* through which the application manager communicates with the job
// handler and the simulation process (Section III of the paper), and for
// experiment scenario files.
//
// Format: `[section]` headers, `key = value` lines, `#` or `;` comments.
// Keys are case-sensitive; values are stored verbatim and converted on read.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace adaptviz {

class IniDocument {
 public:
  /// Parses a document from text. Throws std::runtime_error with a line
  /// number on malformed input.
  static IniDocument parse(const std::string& text);

  /// Loads from a file. Throws std::runtime_error if unreadable.
  static IniDocument load(const std::string& path);

  /// Serialized form, stable section/key order (lexicographic).
  [[nodiscard]] std::string str() const;

  /// Writes atomically (temp file + rename) so a concurrent reader never
  /// observes a torn configuration — the paper's components poll this file.
  void save(const std::string& path) const;

  void set(const std::string& section, const std::string& key,
           const std::string& value);
  void set_double(const std::string& section, const std::string& key,
                  double value);
  void set_int(const std::string& section, const std::string& key, long value);
  void set_bool(const std::string& section, const std::string& key,
                bool value);

  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& section,
                                   const std::string& key,
                                   const std::string& fallback) const;
  /// Typed getters throw std::runtime_error when present but malformed.
  [[nodiscard]] std::optional<double> get_double(const std::string& section,
                                                 const std::string& key) const;
  [[nodiscard]] std::optional<long> get_int(const std::string& section,
                                            const std::string& key) const;
  [[nodiscard]] std::optional<bool> get_bool(const std::string& section,
                                             const std::string& key) const;

  [[nodiscard]] bool has_section(const std::string& section) const;
  [[nodiscard]] bool empty() const { return sections_.empty(); }

  friend bool operator==(const IniDocument&, const IniDocument&) = default;

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace adaptviz
