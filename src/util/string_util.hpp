// Small string helpers shared by parsers and report writers.
#pragma once

#include <string>
#include <vector>

namespace adaptviz {

/// Copy of `s` with leading/trailing ASCII whitespace removed.
std::string trim(const std::string& s);

/// Splits on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(const std::string& s, char sep);

/// True if `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// printf into a std::string.
std::string format(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

}  // namespace adaptviz
