#include "util/calendar.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adaptviz {

CalendarEpoch::CalendarEpoch(int day_of_may, int hour, int minute) {
  if (day_of_may < 1 || day_of_may > 31 || hour < 0 || hour > 23 ||
      minute < 0 || minute > 59) {
    throw std::invalid_argument("CalendarEpoch: out-of-range date");
  }
  epoch_minutes_ = (static_cast<long>(day_of_may) - 1) * 24 * 60 +
                   static_cast<long>(hour) * 60 + minute;
}

std::string CalendarEpoch::label(SimSeconds t) const {
  long total = epoch_minutes_ + std::lround(t.seconds() / 60.0);
  // The Aila window never leaves May, but clamp gracefully if it does.
  long day = total / (24 * 60) + 1;
  long rem = total % (24 * 60);
  if (rem < 0) {
    rem += 24 * 60;
    --day;
  }
  char buf[48];
  if (day >= 1 && day <= 31) {
    std::snprintf(buf, sizeof buf, "%02ld-May %02ld:%02ld", day, rem / 60,
                  rem % 60);
  } else {
    std::snprintf(buf, sizeof buf, "May%+ldd %02ld:%02ld", day - 1, rem / 60,
                  rem % 60);
  }
  return buf;
}

SimSeconds CalendarEpoch::at(int day_of_may, int hour, int minute) const {
  const long abs_min = (static_cast<long>(day_of_may) - 1) * 24 * 60 +
                       static_cast<long>(hour) * 60 + minute;
  return SimSeconds(static_cast<double>(abs_min - epoch_minutes_) * 60.0);
}

}  // namespace adaptviz
