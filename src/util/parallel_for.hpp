// Fork-join row parallelism (OpenMP `parallel for`-style).
//
// Used by the dynamical core and the renderer to split grid rows across
// workers. The partition is deterministic and each worker writes only its
// own rows, so results are bitwise identical to the serial loop for any
// worker count.
//
// Since the persistent-pool runtime (util/thread_pool.hpp) this is a thin
// veneer over ThreadPool::shared(): no threads are spawned per call, and
// the templated overload passes the callable by reference with no
// std::function allocation.
#pragma once

#include <cstddef>
#include <functional>

#include "util/thread_pool.hpp"

namespace adaptviz {

/// Runs body(row_begin, row_end) over a static partition of [begin, end)
/// across `threads` workers (the calling thread is one of them), on the
/// shared persistent pool. threads <= 1 or a tiny range degenerates to a
/// direct call. Non-allocating: the callable is passed by reference.
template <typename Body>
void parallel_for_rows(std::size_t begin, std::size_t end, int threads,
                       Body&& body) {
  ThreadPool::shared().parallel_for(begin, end, threads, body);
}

/// ABI-stable overload for callers that already hold a std::function; thin
/// wrapper over the templated fast path.
void parallel_for_rows(std::size_t begin, std::size_t end, int threads,
                       const std::function<void(std::size_t, std::size_t)>& body);

/// The pre-pool implementation: spawns and joins fresh std::threads on
/// every call. Kept only as the benchmark baseline for the persistent pool
/// (bench_micro's pool-vs-spawn cases); production code paths use the pool.
void parallel_for_rows_spawn(
    std::size_t begin, std::size_t end, int threads,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace adaptviz
