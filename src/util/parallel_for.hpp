// Fork-join row parallelism (OpenMP `parallel for`-style, in std::thread).
//
// Used by the dynamical core to split grid rows across workers. The
// partition is deterministic and each worker writes only its own rows, so
// results are bitwise identical to the serial loop for any worker count.
#pragma once

#include <cstddef>
#include <functional>

namespace adaptviz {

/// Runs body(row_begin, row_end) over a static partition of [begin, end)
/// across `threads` workers (the calling thread is one of them).
/// threads <= 1 or a tiny range degenerates to a direct call.
void parallel_for_rows(std::size_t begin, std::size_t end, int threads,
                       const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace adaptviz
