#include "resources/disk.hpp"

#include <stdexcept>

namespace adaptviz {

DiskModel::DiskModel(Bytes capacity, Bandwidth io_bandwidth)
    : capacity_(capacity), io_bw_(io_bandwidth) {
  if (capacity <= Bytes(0)) {
    throw std::invalid_argument("DiskModel: capacity must be positive");
  }
  if (io_bandwidth.bytes_per_sec() <= 0.0) {
    throw std::invalid_argument("DiskModel: I/O bandwidth must be positive");
  }
}

bool DiskModel::allocate(Bytes size) {
  if (size < Bytes(0)) {
    throw std::invalid_argument("DiskModel: negative allocation");
  }
  if (used_ + size > capacity_) return false;
  used_ += size;
  if (used_ > peak_) peak_ = used_;
  return true;
}

void DiskModel::release(Bytes size) {
  if (size < Bytes(0)) {
    throw std::invalid_argument("DiskModel: negative release");
  }
  if (size > used_) {
    throw std::logic_error("DiskModel: releasing more than used");
  }
  used_ -= size;
}

Bytes DiskModel::inject_external(Bytes size) {
  if (size < Bytes(0)) {
    throw std::invalid_argument("DiskModel: negative injection");
  }
  const Bytes placed = size <= free_space() ? size : free_space();
  used_ += placed;
  if (used_ > peak_) peak_ = used_;
  return placed;
}

void DiskModel::release_external(Bytes size) {
  if (size < Bytes(0)) {
    throw std::invalid_argument("DiskModel: negative release");
  }
  used_ -= size <= used_ ? size : used_;
}

double DiskModel::free_percent() const {
  return 100.0 * free_space().as_double() / capacity_.as_double();
}

WallSeconds DiskModel::write_time(Bytes size) const {
  return transfer_time(size, io_bw_);
}

}  // namespace adaptviz
