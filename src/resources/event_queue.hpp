// Discrete-event kernel with a virtual wall clock.
//
// Every actor in the framework (simulation process, frame sender/receiver,
// visualization process, application manager, job handler) advances by
// scheduling callbacks on this queue. Virtual time makes a multi-day
// experiment replay in seconds while preserving every ordering interaction
// (disk filling while a transfer is in flight, the manager waking mid-step,
// and so on).
//
// Determinism: events at equal times run in scheduling order (FIFO), so a
// seeded experiment is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace adaptviz {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 private:
  struct Item {
    WallSeconds time;
    std::uint64_t seq;
    EventId id;
    // Ordered for a min-heap via std::greater-like comparator below.
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time.seconds() != b.time.seconds()) {
        return a.time.seconds() > b.time.seconds();
      }
      return a.seq > b.seq;
    }
  };

  struct Record {
    EventFn fn;
    std::string label;
  };

 public:
  /// Copyable checkpoint of the queue: clock, id/seq counters, and every
  /// pending event (closures included — they capture either long-lived
  /// component pointers, whose own state is snapshotted alongside, or
  /// frozen by-value data). Restoring on the same component graph resumes
  /// the event stream bit for bit.
  struct State {
    WallSeconds now{0.0};
    std::uint64_t next_seq = 0;
    EventId next_id = 1;
    std::priority_queue<Item, std::vector<Item>, Later> heap;
    std::unordered_map<EventId, Record> records;
    std::unordered_set<EventId> cancelled;
    std::uint64_t executed = 0;
  };

  [[nodiscard]] State snapshot() const;
  void restore(const State& s);

  /// Current virtual time. Starts at 0.
  [[nodiscard]] WallSeconds now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now, else clamped to now).
  /// `label` is for diagnostics only. Returns an id usable with cancel().
  EventId schedule_at(WallSeconds t, EventFn fn, std::string label = {});

  /// Schedules `fn` `dt` after the current time (dt < 0 is clamped to 0).
  EventId schedule_after(WallSeconds dt, EventFn fn, std::string label = {});

  /// Cancels a pending event; cancelling a fired/unknown id is a no-op.
  void cancel(EventId id);

  /// Runs the single earliest pending event; returns false if none remain.
  bool step();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(WallSeconds t);

  /// Drains the queue; throws std::runtime_error after `max_events` as a
  /// runaway guard.
  void run_all(std::uint64_t max_events = 100'000'000);

  [[nodiscard]] std::size_t pending() const {
    return heap_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  WallSeconds now_{0.0};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_map<EventId, Record> records_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t executed_ = 0;
};

}  // namespace adaptviz
