#include "resources/network.hpp"

#include <cmath>
#include <stdexcept>

namespace adaptviz {

NetworkLink::NetworkLink(LinkSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  if (spec_.nominal.bytes_per_sec() <= 0.0) {
    throw std::invalid_argument("NetworkLink: nominal bandwidth must be > 0");
  }
  if (spec_.fluctuation_sigma < 0.0 || spec_.persistence < 0.0 ||
      spec_.persistence >= 1.0) {
    throw std::invalid_argument("NetworkLink: bad fluctuation parameters");
  }
  if (spec_.efficiency <= 0.0 || spec_.efficiency > 1.0) {
    throw std::invalid_argument("NetworkLink: efficiency must be in (0, 1]");
  }
  for (std::size_t i = 0; i < spec_.outages.size(); ++i) {
    const LinkOutage& o = spec_.outages[i];
    if (o.end <= o.start ||
        (i > 0 && o.start < spec_.outages[i - 1].end)) {
      throw std::invalid_argument(
          "NetworkLink: outages must be sorted and non-overlapping");
    }
  }
}

bool NetworkLink::in_outage(WallSeconds t) const {
  for (const LinkOutage& o : spec_.outages) {
    if (t >= o.start && t < o.end) return true;
    if (t < o.start) break;
  }
  return false;
}

void NetworkLink::advance_factor(WallSeconds now) {
  if (spec_.fluctuation_sigma == 0.0) return;
  // Step the AR(1) log-factor once per elapsed update period. The
  // innovation stddev is chosen so the stationary stddev equals sigma.
  const double period = spec_.update_period.seconds();
  if (period <= 0.0) return;
  const double rho = spec_.persistence;
  const double innov =
      spec_.fluctuation_sigma * std::sqrt(1.0 - rho * rho);
  while (last_update_ + spec_.update_period <= now) {
    log_factor_ = rho * log_factor_ + innov * rng_.normal();
    last_update_ += spec_.update_period;
  }
}

Bandwidth NetworkLink::current_bandwidth(WallSeconds now) {
  if (in_outage(now)) return Bandwidth(0.0);
  advance_factor(now);
  // exp keeps the factor positive; clamp to avoid pathological stalls.
  const double f = std::exp(std::min(std::max(log_factor_, -1.5), 1.5));
  return Bandwidth(spec_.nominal.bytes_per_sec() * spec_.efficiency * f);
}

WallSeconds NetworkLink::transfer_duration(Bytes size, WallSeconds now) {
  advance_factor(now);
  const double f = std::exp(std::min(std::max(log_factor_, -1.5), 1.5));
  const double rate = spec_.nominal.bytes_per_sec() * spec_.efficiency * f;

  // Serve the payload at `rate`, pausing across outage windows.
  double t = (now + spec_.latency).seconds();
  double remaining = size.as_double();
  for (const LinkOutage& o : spec_.outages) {
    if (o.end.seconds() <= t) continue;
    if (t >= o.start.seconds()) {
      t = o.end.seconds();  // started mid-outage: wait it out
      continue;
    }
    const double capacity = rate * (o.start.seconds() - t);
    if (remaining <= capacity) {
      return WallSeconds(t + remaining / rate) - now;
    }
    remaining -= capacity;
    t = o.end.seconds();
  }
  return WallSeconds(t + remaining / rate) - now;
}

NetworkLink::ProbeResult NetworkLink::probe(WallSeconds now, Bytes probe_size) {
  const WallSeconds elapsed = transfer_duration(probe_size, now);
  // The probe includes latency in its timing, exactly like timing a real
  // message, so the measured figure is slightly below the true bandwidth.
  const Bandwidth measured =
      Bandwidth(probe_size.as_double() / elapsed.seconds());
  return ProbeResult{measured, elapsed};
}

}  // namespace adaptviz
