#include "resources/network.hpp"

#include <cmath>
#include <stdexcept>

namespace adaptviz {
namespace {

/// advance_factor walks the per-period AR(1) loop at most this far before
/// switching to the closed-form multi-step jump (a catch-up this long only
/// happens after an idle gap no experiment cadence produces).
constexpr int kMaxCatchUpSteps = 64;

}  // namespace

NetworkLink::NetworkLink(LinkSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed), fault_rng_(seed ^ 0xfa117a11u) {
  if (spec_.nominal.bytes_per_sec() <= 0.0) {
    throw std::invalid_argument("NetworkLink: nominal bandwidth must be > 0");
  }
  if (spec_.failure_probability < 0.0 || spec_.failure_probability > 1.0) {
    throw std::invalid_argument(
        "NetworkLink: failure probability must be in [0, 1]");
  }
  if (spec_.fluctuation_sigma < 0.0 || spec_.persistence < 0.0 ||
      spec_.persistence >= 1.0) {
    throw std::invalid_argument("NetworkLink: bad fluctuation parameters");
  }
  if (spec_.efficiency <= 0.0 || spec_.efficiency > 1.0) {
    throw std::invalid_argument("NetworkLink: efficiency must be in (0, 1]");
  }
  for (std::size_t i = 0; i < spec_.outages.size(); ++i) {
    const LinkOutage& o = spec_.outages[i];
    if (o.end <= o.start ||
        (i > 0 && o.start < spec_.outages[i - 1].end)) {
      throw std::invalid_argument(
          "NetworkLink: outages must be sorted and non-overlapping");
    }
  }
}

void NetworkLink::set_efficiency(double efficiency) {
  if (efficiency <= 0.0 || efficiency > 1.0) {
    throw std::invalid_argument("NetworkLink: efficiency must be in (0, 1]");
  }
  spec_.efficiency = efficiency;
}

void NetworkLink::set_failure_probability(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "NetworkLink: failure probability must be in [0, 1]");
  }
  spec_.failure_probability = p;
}

bool NetworkLink::in_outage(WallSeconds t) const {
  for (const LinkOutage& o : spec_.outages) {
    if (t >= o.start && t < o.end) return true;
    if (t < o.start) break;
  }
  return false;
}

void NetworkLink::advance_factor(WallSeconds now) {
  if (spec_.fluctuation_sigma == 0.0) return;
  // Step the AR(1) log-factor once per elapsed update period. The
  // innovation stddev is chosen so the stationary stddev equals sigma.
  const double period = spec_.update_period.seconds();
  if (period <= 0.0) return;
  const double rho = spec_.persistence;
  const double innov =
      spec_.fluctuation_sigma * std::sqrt(1.0 - rho * rho);
  // Capped catch-up: the per-period loop is bitwise-identical to the
  // historical behavior for the cadences the experiments actually run at.
  int caught_up = 0;
  while (caught_up < kMaxCatchUpSteps &&
         last_update_ + spec_.update_period <= now) {
    log_factor_ = rho * log_factor_ + innov * rng_.normal();
    last_update_ += spec_.update_period;
    ++caught_up;
  }
  if (last_update_ + spec_.update_period > now) return;
  // A long simulation stall with a small update period would otherwise
  // spin O(gap / period) iterations. Jump the remaining n steps in closed
  // form: x_n = rho^n x_0 + sigma sqrt(1 - rho^{2n}) N(0,1) is exactly the
  // n-step AR(1) transition, so the stationary distribution is preserved.
  const double gap = (now - last_update_).seconds();
  const auto n = static_cast<std::uint64_t>(gap / period);
  if (n == 0) return;
  const double rho_n = std::pow(rho, static_cast<double>(n));
  const double jump_sigma = spec_.fluctuation_sigma *
                            std::sqrt(std::max(0.0, 1.0 - rho_n * rho_n));
  log_factor_ = rho_n * log_factor_ + jump_sigma * rng_.normal();
  last_update_ += WallSeconds(period * static_cast<double>(n));
}

Bandwidth NetworkLink::current_bandwidth(WallSeconds now) {
  if (in_outage(now)) return Bandwidth(0.0);
  advance_factor(now);
  // exp keeps the factor positive; clamp to avoid pathological stalls.
  const double f = std::exp(std::min(std::max(log_factor_, -1.5), 1.5));
  return Bandwidth(spec_.nominal.bytes_per_sec() * spec_.efficiency * f);
}

WallSeconds NetworkLink::transfer_duration(Bytes size, WallSeconds now) {
  advance_factor(now);
  const double f = std::exp(std::min(std::max(log_factor_, -1.5), 1.5));
  const double rate = spec_.nominal.bytes_per_sec() * spec_.efficiency * f;

  // Serve the payload at `rate`, pausing across outage windows.
  double t = (now + spec_.latency).seconds();
  double remaining = size.as_double();
  for (const LinkOutage& o : spec_.outages) {
    if (o.end.seconds() <= t) continue;
    if (t >= o.start.seconds()) {
      t = o.end.seconds();  // started mid-outage: wait it out
      continue;
    }
    const double capacity = rate * (o.start.seconds() - t);
    if (remaining <= capacity) {
      return WallSeconds(t + remaining / rate) - now;
    }
    remaining -= capacity;
    t = o.end.seconds();
  }
  return WallSeconds(t + remaining / rate) - now;
}

NetworkLink::TransferAttempt NetworkLink::plan_transfer(Bytes size,
                                                        WallSeconds now) {
  TransferAttempt attempt;
  attempt.duration = transfer_duration(size, now);
  attempt.bytes_moved = size;
  if (spec_.failure_probability <= 0.0) return attempt;
  if (fault_rng_.uniform() >= spec_.failure_probability) return attempt;
  attempt.failed = true;
  // Abort at a sampled progress fraction; the wall time burned is the time
  // that partial payload takes over the same link (outage pauses included).
  attempt.bytes_moved = size * fault_rng_.uniform();
  attempt.duration = transfer_duration(attempt.bytes_moved, now);
  return attempt;
}

NetworkLink::ProbeResult NetworkLink::probe(WallSeconds now, Bytes probe_size) {
  const WallSeconds elapsed = transfer_duration(probe_size, now);
  // The probe includes latency in its timing, exactly like timing a real
  // message, so the measured figure is slightly below the true bandwidth.
  // A degenerate probe (zero payload over a zero-latency link) completes
  // in no time; report the instantaneous rate instead of dividing by zero.
  const Bandwidth measured =
      elapsed.seconds() > 0.0
          ? Bandwidth(probe_size.as_double() / elapsed.seconds())
          : current_bandwidth(now);
  return ProbeResult{measured, elapsed};
}

}  // namespace adaptviz
