#include "resources/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace adaptviz {

EventQueue::State EventQueue::snapshot() const {
  State s;
  s.now = now_;
  s.next_seq = next_seq_;
  s.next_id = next_id_;
  s.heap = heap_;
  s.records = records_;
  s.cancelled = cancelled_;
  s.executed = executed_;
  return s;
}

void EventQueue::restore(const State& s) {
  now_ = s.now;
  next_seq_ = s.next_seq;
  next_id_ = s.next_id;
  heap_ = s.heap;
  records_ = s.records;
  cancelled_ = s.cancelled;
  executed_ = s.executed;
}

EventId EventQueue::schedule_at(WallSeconds t, EventFn fn, std::string label) {
  if (!fn) throw std::invalid_argument("EventQueue: null event function");
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Item{t, next_seq_++, id});
  records_.emplace(id, Record{std::move(fn), std::move(label)});
  return id;
}

EventId EventQueue::schedule_after(WallSeconds dt, EventFn fn,
                                   std::string label) {
  if (dt < WallSeconds(0.0)) dt = WallSeconds(0.0);
  return schedule_at(now_ + dt, std::move(fn), std::move(label));
}

void EventQueue::cancel(EventId id) {
  if (records_.contains(id)) cancelled_.insert(id);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Item item = heap_.top();
    heap_.pop();
    const auto cit = cancelled_.find(item.id);
    if (cit != cancelled_.end()) {
      cancelled_.erase(cit);
      records_.erase(item.id);
      continue;
    }
    auto rit = records_.find(item.id);
    // The record must exist: ids leave records_ only via this function.
    EventFn fn = std::move(rit->second.fn);
    records_.erase(rit);
    now_ = item.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void EventQueue::run_until(WallSeconds t) {
  while (!heap_.empty()) {
    // Skip over cancelled heads without advancing time.
    const Item item = heap_.top();
    if (cancelled_.contains(item.id)) {
      heap_.pop();
      cancelled_.erase(item.id);
      records_.erase(item.id);
      continue;
    }
    if (item.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw std::runtime_error("EventQueue: runaway event loop");
    }
  }
}

}  // namespace adaptviz
