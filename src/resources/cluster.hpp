// Simulation-site cluster model and the paper's Table IV presets.
//
// The decision algorithms never see this "ground truth": like the paper,
// they see only (a) profiling samples gathered by benchmark runs and (b) a
// fitted curve (perf/perf_model.hpp). The ground truth produces per-step
// times of the form
//
//   t(p, work) = (serial + work / p + comm * log2 p) * noise
//
// where `work` scales with the modeled grid (finer resolution => more points
// and more substeps) and `noise` is multiplicative lognormal jitter --
// machines are never perfectly repeatable, which is precisely why the paper
// fits a curve instead of tabulating.
#pragma once

#include <string>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace adaptviz {

struct MachineSpec {
  std::string name;
  /// Upper limit imposed by WRF decomposition rules (paper: >=6x6 parent
  /// points and >=9x9 nest points per MPI rank) and the machine itself.
  int max_cores = 1;
  /// Allocation floor: the job handler never schedules below this (running a
  /// mesoscale model on one core is pointless and would let the greedy
  /// algorithm "slow down" into absurdity).
  int min_cores = 4;
  /// Per-step ground-truth coefficients at work == 1.
  double serial_seconds = 0.0;
  double work_seconds = 1.0;  // perfectly parallel part, divided by p
  double comm_seconds = 0.0;  // multiplied by log2(p)
  /// Relative stddev of the multiplicative per-step noise.
  double noise_sigma = 0.0;
};

class GroundTruthMachine {
 public:
  GroundTruthMachine(MachineSpec spec, std::uint64_t seed);

  /// Noisy per-step execution time on `processors` cores for `work_units`
  /// of per-step work. processors is clamped to [1, max_cores].
  [[nodiscard]] WallSeconds step_time(int processors, double work_units);

  /// Noise-free expectation, used by tests and the Table I estimator.
  [[nodiscard]] WallSeconds expected_step_time(int processors,
                                               double work_units) const;

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  /// Position of the per-step noise stream (the spec is a construction
  /// constant).
  struct State {
    Rng rng;
  };
  [[nodiscard]] State snapshot() const { return State{rng_}; }
  void restore(const State& s) { rng_ = s.rng; }

 private:
  MachineSpec spec_;
  Rng rng_;
};

/// One simulation site: the machine plus its stable storage and WAN uplink
/// parameters (Table IV row).
struct SiteSpec {
  MachineSpec machine;
  Bytes disk_capacity{};
  Bandwidth io_bandwidth{};  // parallel file-system write rate
  Bandwidth wan_nominal{};   // average sim->vis bandwidth from Table IV
  /// Sustained single-stream efficiency of the WAN path (see LinkSpec).
  double wan_efficiency = 1.0;
  double wan_fluctuation_sigma = 0.0;
};

/// Table IV presets. Absolute step-time coefficients are calibrated so the
/// full Aila window takes tens of virtual hours, matching the paper's x-axes
/// (see EXPERIMENTS.md for the calibration note).
SiteSpec inter_department_site();  // fire,  48 cores, 182 GB, 56 Mbps
SiteSpec intra_country_site();     // gg-blr, 90 cores, 150 GB, 40 Mbps
SiteSpec cross_continent_site();   // moria, 56 cores, 100 GB, 60 Kbps

}  // namespace adaptviz
