// Wide-area link between the simulation and visualization sites.
//
// Real WANs fluctuate; the paper's application manager therefore *measures*
// bandwidth by timing a ~1 GB message rather than trusting a nominal figure.
// NetworkLink models the true instantaneous bandwidth as a mean-reverting
// AR(1) multiplicative factor around the nominal rate, re-sampled on a fixed
// cadence; probe() reproduces the paper's measurement (time a probe payload,
// divide) including the noise that real probes see.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace adaptviz {

/// A window of total link unavailability (maintenance, route flap, ...).
struct LinkOutage {
  WallSeconds start{};
  WallSeconds end{};
};

struct LinkSpec {
  Bandwidth nominal;
  /// Scheduled outages (sorted, non-overlapping). No bytes move inside a
  /// window; a transfer in flight resumes when the link returns — the
  /// resource dynamics the application manager must ride out.
  std::vector<LinkOutage> outages;
  /// Sustained-transfer efficiency in (0, 1]: the fraction of the nominal
  /// link rate a single long-lived stream actually achieves. 2010-era bulk
  /// transfers over high-RTT WANs (TCP window limits, shared paths) rarely
  /// sustained more than ~a third of the quoted capacity — exactly why the
  /// paper *measures* bandwidth instead of trusting the spec sheet.
  double efficiency = 1.0;
  /// Relative stddev of the stationary fluctuation factor (0 = constant).
  double fluctuation_sigma = 0.0;
  /// AR(1) persistence per update step, in [0, 1); higher = slower drift.
  double persistence = 0.9;
  /// Virtual-time spacing between factor updates.
  WallSeconds update_period = WallSeconds::hours(0.25);
  /// One-way latency added to every transfer.
  WallSeconds latency = WallSeconds(0.05);
  /// Failure injection: probability in [0, 1] that a single transfer
  /// attempt aborts mid-flight (route flap, TCP reset, receiver hiccup —
  /// the failure modes a real intercontinental WAN shows routinely). The
  /// abort point is a uniformly sampled progress fraction. Draws come from
  /// a dedicated seeded stream, so enabling failures does not perturb the
  /// AR(1) bandwidth fluctuation path and runs stay deterministic.
  double failure_probability = 0.0;
};

class NetworkLink {
 public:
  NetworkLink(LinkSpec spec, std::uint64_t seed);

  /// True instantaneous bandwidth at virtual time `now` (zero during an
  /// outage window).
  [[nodiscard]] Bandwidth current_bandwidth(WallSeconds now);

  /// Wall time to move `size` starting at `now`: latency + serving time at
  /// the current rate, skipping over any outage windows in between.
  [[nodiscard]] WallSeconds transfer_duration(Bytes size, WallSeconds now);

  /// One planned transfer attempt under the failure model: either the full
  /// payload lands after `duration`, or the attempt aborts (`failed`) after
  /// moving `bytes_moved` of it. An aborted attempt delivers nothing — the
  /// partial bytes are wasted wire time the sender must pay again.
  struct TransferAttempt {
    bool failed = false;
    WallSeconds duration{};
    Bytes bytes_moved{};
  };
  [[nodiscard]] TransferAttempt plan_transfer(Bytes size, WallSeconds now);

  /// True when `t` falls inside a scheduled outage.
  [[nodiscard]] bool in_outage(WallSeconds t) const;

  /// The application manager's measurement: times `probe_size` over the link
  /// and reports size/time. Returns the measured bandwidth and the probe's
  /// duration (the measurement itself costs wall time).
  struct ProbeResult {
    Bandwidth measured;
    WallSeconds elapsed;
  };
  [[nodiscard]] ProbeResult probe(WallSeconds now,
                                  Bytes probe_size = Bytes::gigabytes(1));

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

  /// Failure injection (adversary hooks): replace the sustained-transfer
  /// efficiency / the per-attempt abort probability mid-run. Both take
  /// effect on the next transfer planned; neither consumes an RNG draw, so
  /// applying the same mutation at the same virtual time reproduces the
  /// same downstream byte stream.
  void set_efficiency(double efficiency);
  void set_failure_probability(double p);

  /// The link's full dynamic state: the (mutable) spec, both RNG stream
  /// positions, and the AR(1) fluctuation factor. Restoring replays the
  /// exact same bandwidth and failure sequence.
  struct State {
    LinkSpec spec;
    Rng rng;
    Rng fault_rng;
    double log_factor = 0.0;
    WallSeconds last_update{0.0};
  };
  [[nodiscard]] State snapshot() const {
    return State{spec_, rng_, fault_rng_, log_factor_, last_update_};
  }
  void restore(const State& s) {
    spec_ = s.spec;
    rng_ = s.rng;
    fault_rng_ = s.fault_rng;
    log_factor_ = s.log_factor;
    last_update_ = s.last_update;
  }

 private:
  void advance_factor(WallSeconds now);

  LinkSpec spec_;
  Rng rng_;        // AR(1) fluctuation stream
  Rng fault_rng_;  // failure-injection stream (independent of rng_)
  double log_factor_ = 0.0;  // log of the multiplicative factor
  WallSeconds last_update_{0.0};
};

}  // namespace adaptviz
