#include "resources/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaptviz {

GroundTruthMachine::GroundTruthMachine(MachineSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  if (spec_.max_cores < 1 || spec_.min_cores < 1 ||
      spec_.min_cores > spec_.max_cores) {
    throw std::invalid_argument("GroundTruthMachine: bad core limits");
  }
  if (spec_.work_seconds <= 0.0 || spec_.serial_seconds < 0.0 ||
      spec_.comm_seconds < 0.0 || spec_.noise_sigma < 0.0) {
    throw std::invalid_argument("GroundTruthMachine: bad coefficients");
  }
}

WallSeconds GroundTruthMachine::expected_step_time(int processors,
                                                   double work_units) const {
  const int p = std::clamp(processors, 1, spec_.max_cores);
  const double pd = static_cast<double>(p);
  return WallSeconds(spec_.serial_seconds +
                     spec_.work_seconds * work_units / pd +
                     spec_.comm_seconds * std::log2(pd));
}

WallSeconds GroundTruthMachine::step_time(int processors, double work_units) {
  const double base = expected_step_time(processors, work_units).seconds();
  if (spec_.noise_sigma == 0.0) return WallSeconds(base);
  // Lognormal multiplicative jitter with unit mean.
  const double s = spec_.noise_sigma;
  const double f = std::exp(rng_.normal(-0.5 * s * s, s));
  return WallSeconds(base * f);
}

// Calibration note (see EXPERIMENTS.md): work_seconds is seconds per million
// grid-point updates per step; the Aila domain produces ~0.15 Mupdates/step
// at 24 km and ~0.9 at 10 km, placing full-resolution step times in the
// tens of seconds on each machine, as the paper's wall-clock axes imply.

SiteSpec inter_department_site() {
  SiteSpec s;
  s.machine = MachineSpec{
      .name = "fire",  // 12x2 dual-core Opteron 2218, 2.64 GHz
      .max_cores = 48,
      .min_cores = 4,
      .serial_seconds = 2.0,
      .work_seconds = 2000.0,
      .comm_seconds = 0.5,
      .noise_sigma = 0.05,
  };
  s.disk_capacity = Bytes::gigabytes(182);
  s.io_bandwidth = Bandwidth::megabytes_per_second(150);
  s.wan_nominal = Bandwidth::mbps(56);
  s.wan_efficiency = 0.10;  // sustained concurrent-transfer throughput incl. vis-side ingest (see EXPERIMENTS.md)
  s.wan_fluctuation_sigma = 0.15;
  return s;
}

SiteSpec intra_country_site() {
  SiteSpec s;
  s.machine = MachineSpec{
      .name = "gg-blr",  // HP Xeon X5460 quad-core, 3.16 GHz, Infiniband
      .max_cores = 90,
      .min_cores = 4,
      .serial_seconds = 1.5,
      .work_seconds = 3600.0,
      .comm_seconds = 0.4,
      .noise_sigma = 0.05,
  };
  s.disk_capacity = Bytes::gigabytes(150);
  s.io_bandwidth = Bandwidth::megabytes_per_second(200);
  s.wan_nominal = Bandwidth::mbps(40);  // National Knowledge Network path
  s.wan_efficiency = 0.35;
  s.wan_fluctuation_sigma = 0.15;
  return s;
}

SiteSpec cross_continent_site() {
  SiteSpec s;
  s.machine = MachineSpec{
      .name = "moria",  // dual Opteron 265, 1.8 GHz
      .max_cores = 56,
      .min_cores = 4,
      .serial_seconds = 2.5,
      .work_seconds = 3600.0,
      .comm_seconds = 0.6,
      .noise_sigma = 0.05,
  };
  s.disk_capacity = Bytes::gigabytes(100);
  s.io_bandwidth = Bandwidth::megabytes_per_second(100);
  s.wan_nominal = Bandwidth::kbps(60);  // intercontinental commodity path
  s.wan_efficiency = 0.80;
  s.wan_fluctuation_sigma = 0.25;
  return s;
}

}  // namespace adaptviz
