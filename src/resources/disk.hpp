// Stable-storage model for the simulation site.
//
// Tracks capacity and occupancy; `free_percent()` is the framework's `df`.
// The application manager polls it, the greedy algorithm thresholds on it,
// and the LP's disk constraint consumes its free space. A reservation API
// lets the simulation process check space *before* an I/O burst, mirroring
// the paper's "simulation ... outputs climate data to disks as long as the
// available disk space is sufficient".
#pragma once

#include "util/units.hpp"

namespace adaptviz {

class DiskModel {
 public:
  /// `capacity` must be positive; `io_bandwidth` is the parallel-I/O write
  /// rate that determines the paper's TIO (time to output one frame).
  DiskModel(Bytes capacity, Bandwidth io_bandwidth);

  /// Attempts to place `size` bytes; returns false (and changes nothing)
  /// when it would exceed capacity.
  [[nodiscard]] bool allocate(Bytes size);

  /// Releases bytes (e.g. a frame shipped to the visualization site).
  /// Throws std::logic_error on releasing more than is used.
  void release(Bytes size);

  /// Failure injection: an external tenant dumps `size` bytes onto the
  /// shared disk (the adversary's "disk shock"). Clamped at capacity;
  /// returns the bytes actually placed. The occupancy is permanent until
  /// release_external() frees it — the framework's own accounting never
  /// releases bytes it did not allocate.
  Bytes inject_external(Bytes size);
  /// Frees previously injected external bytes (clamped at used()).
  void release_external(Bytes size);

  /// Mutable occupancy accounting (capacity and I/O rate are construction
  /// constants and not part of the state machine).
  struct State {
    Bytes used{};
    Bytes peak{};
  };
  [[nodiscard]] State snapshot() const { return State{used_, peak_}; }
  void restore(const State& s) {
    used_ = s.used;
    peak_ = s.peak;
  }

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes free_space() const { return capacity_ - used_; }
  /// Percentage of the disk that is free, 0..100 (the `df` the paper polls).
  [[nodiscard]] double free_percent() const;
  /// High-water mark of `used()` over the disk's lifetime.
  [[nodiscard]] Bytes peak_used() const { return peak_; }

  [[nodiscard]] Bandwidth io_bandwidth() const { return io_bw_; }
  /// Time to write `size` at the disk's I/O bandwidth (the paper's TIO for a
  /// frame-sized write).
  [[nodiscard]] WallSeconds write_time(Bytes size) const;

 private:
  Bytes capacity_;
  Bytes used_{};
  Bytes peak_{};
  Bandwidth io_bw_;
};

}  // namespace adaptviz
