#include "core/app_config.hpp"

#include <stdexcept>

namespace adaptviz {

namespace {
constexpr const char* kSection = "application";
}

IniDocument ApplicationConfiguration::to_ini() const {
  IniDocument doc;
  doc.set_int(kSection, "processors", processors);
  doc.set_double(kSection, "output_interval_sim_seconds",
                 output_interval.seconds());
  doc.set_double(kSection, "resolution_km", resolution_km);
  doc.set_bool(kSection, "critical", critical);
  doc.set_bool(kSection, "paused", paused);
  doc.set_int(kSection, "version", version);
  return doc;
}

ApplicationConfiguration ApplicationConfiguration::from_ini(
    const IniDocument& doc) {
  ApplicationConfiguration c;
  const auto procs = doc.get_int(kSection, "processors");
  const auto oi = doc.get_double(kSection, "output_interval_sim_seconds");
  const auto res = doc.get_double(kSection, "resolution_km");
  if (!procs || !oi || !res) {
    throw std::runtime_error("ApplicationConfiguration: missing keys");
  }
  c.processors = static_cast<int>(*procs);
  c.output_interval = SimSeconds(*oi);
  c.resolution_km = *res;
  c.critical = doc.get_bool(kSection, "critical").value_or(false);
  c.paused = doc.get_bool(kSection, "paused").value_or(false);
  c.version = doc.get_int(kSection, "version").value_or(0);
  if (c.processors < 1 || c.output_interval.seconds() <= 0 ||
      c.resolution_km <= 0) {
    throw std::runtime_error("ApplicationConfiguration: invalid values");
  }
  return c;
}

void ApplicationConfiguration::save(const std::string& path) const {
  to_ini().save(path);
}

ApplicationConfiguration ApplicationConfiguration::load(
    const std::string& path) {
  return from_ini(IniDocument::load(path));
}

}  // namespace adaptviz
