// Optimization decision algorithm (paper Section IV-B).
//
// Linear program over decision variables
//   t — execution time per simulation step (seconds),
//   z — F/S, frames output per frame solved (inverse output interval in
//       units of the integration step: OI = ts / z, eq. 9),
//   y — T/S, frames transferred per frame solved:
//
//   minimize t
//   s.t.  t + TIO*z <= (O/b)*y          (continuous visualization, eq. 5)
//         t + TIO*z >= O*z / (D/n + b)  (no disk overflow within horizon n,
//                                        linearization of eq. 4; the z on
//                                        the O term is required by the
//                                        derivation — see DESIGN.md)
//         T_LB <= t <= T_UB             (processor bounds, eq. 7)
//         z_LB <= z <= z_UB             (output-interval bounds, eq. 8)
//         0 <= y <= z                   (cannot transfer more than written)
//
// where O is the frame size, TIO = O / io_bandwidth, b the observed network
// bandwidth, D the free disk space and n the overflow horizon.
//
// When eq. 5 is infeasible (a network so fast that even the maximum
// simulation rate cannot keep it busy) the constraint is dropped: frames
// simply queue briefly at the visualization end — the benign direction.
#pragma once

#include "core/decision.hpp"

namespace adaptviz {

/// Tiebreak among t-optimal solutions: the objective is min t either way;
/// the frequency preference only selects which optimal vertex is returned.
enum class FrequencyPreference {
  /// Steady output at the lowest acceptable frequency — conserves storage
  /// and yields the near-constant output interval the paper reports for its
  /// optimization method ("steady-state simulation and visualization rate",
  /// "the disk output interval is almost constant").
  kSteady,
  /// Output as frequently as the constraints allow (maximum temporal
  /// resolution). Spends the disk budget; compared in the ablation bench.
  kMaxResolution,
};

struct OptimizerConfig {
  /// Bounds for the disk-overflow horizon n. Within them, n is estimated as
  /// the expected remaining wall time of the run (at the fastest step time),
  /// padded by `horizon_safety`.
  WallSeconds min_horizon = WallSeconds::hours(6.0);
  WallSeconds max_horizon = WallSeconds::hours(48.0);
  double horizon_safety = 1.5;
  FrequencyPreference preference = FrequencyPreference::kSteady;
};

class LpOptimizerAlgorithm final : public DecisionAlgorithm {
 public:
  explicit LpOptimizerAlgorithm(OptimizerConfig config = {});

  [[nodiscard]] Decision decide(const DecisionInput& input) override;
  [[nodiscard]] std::string name() const override { return "optimization"; }

  /// The horizon n used for a given input (exposed for tests).
  [[nodiscard]] WallSeconds overflow_horizon(const DecisionInput& in) const;

 private:
  OptimizerConfig config_;
};

}  // namespace adaptviz
