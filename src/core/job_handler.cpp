#include "core/job_handler.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace adaptviz {

JobHandler::JobHandler(EventQueue& queue, SimulationProcess& process,
                       ApplicationConfiguration& shared_config,
                       DiskModel& disk, ModelConfig model_config,
                       ResolutionLadder ladder, Options options)
    : queue_(queue),
      process_(process),
      config_(shared_config),
      disk_(disk),
      model_config_(std::move(model_config)),
      ladder_(std::move(ladder)),
      options_(options) {}

void JobHandler::launch_initial() {
  config_.resolution_km = model_config_.base_resolution_km;
  active_ = config_;
  launched_ = true;
  auto model = std::make_unique<WeatherModel>(model_config_, ladder_);
  process_.start(std::move(model));
}

void JobHandler::on_configuration_changed() {
  if (!launched_ || restarting_ || process_.finished()) return;
  if (!config_.requires_restart(active_)) {
    // Only the CRITICAL flag (or nothing) changed; the simulation process
    // reacts to that in place.
    active_ = config_;
    return;
  }
  restart();
}

void JobHandler::on_resolution_signal(double new_resolution_km) {
  if (!launched_ || restarting_ || process_.finished()) return;
  if (resolution_floor_km_ > 0.0 &&
      new_resolution_km < resolution_floor_km_) {
    new_resolution_km = resolution_floor_km_;
    ADAPTVIZ_LOG_INFO("job-handler",
                      "resolution signal clamped to steering floor %.1f km",
                      resolution_floor_km_);
  }
  if (new_resolution_km >= config_.resolution_km - 1e-9) return;  // no-op
  config_.resolution_km = new_resolution_km;
  ++config_.version;
  restart();
}

void JobHandler::set_nest_extent(double extent_deg) {
  if (extent_deg <= 0.0) {
    throw std::invalid_argument("set_nest_extent: must be positive");
  }
  model_config_.nest_extent_deg = extent_deg;
  if (!launched_ || restarting_ || process_.finished()) return;
  ++config_.version;
  restart();
}

void JobHandler::restart() {
  restarting_ = true;
  ADAPTVIZ_LOG_INFO("job-handler",
                    "restart: %d procs -> %d, OI %.1f -> %.1f sim-min, "
                    "res %.1f -> %.1f km",
                    active_.processors, config_.processors,
                    active_.output_interval.as_minutes(),
                    config_.output_interval.as_minutes(),
                    active_.resolution_km, config_.resolution_km);
  process_.request_stop([this](NclFile checkpoint) {
    // Checkpoint round trip (write + read) at the parallel-I/O rate, plus
    // the scheduler's fixed restart cost. The checkpoint is field data at
    // the modeled output size.
    const Bytes ckpt_size(
        static_cast<std::int64_t>(checkpoint.encoded_size()));
    const WallSeconds io_cost = disk_.write_time(ckpt_size) * 2.0;

    std::string ckpt_path;
    if (!options_.checkpoint_dir.empty()) {
      ckpt_path = options_.checkpoint_dir + "/checkpoint_" +
                  std::to_string(restarts_) + ".ncl";
      checkpoint.save(ckpt_path);
      checkpoint = NclFile();  // the file is now the source of truth
    }
    queue_.schedule_after(
        options_.restart_overhead + io_cost,
        [this, checkpoint = std::move(checkpoint),
         ckpt_path = std::move(ckpt_path)] {
          if (process_.finished()) {
            // The run completed while the stop was in flight.
            restarting_ = false;
            return;
          }
          const NclFile& source = ckpt_path.empty()
                                      ? checkpoint
                                      : (reloaded_ = NclFile::load(ckpt_path));
          auto model = std::make_unique<WeatherModel>(
              WeatherModel::restore(model_config_, ladder_, source));
          if (model->modeled_resolution_km() != config_.resolution_km) {
            model->set_modeled_resolution(config_.resolution_km);
          }
          active_ = config_;
          restarting_ = false;
          ++restarts_;
          process_.start(std::move(model));
        },
        "job-handler.restart");
  });
}

}  // namespace adaptviz
