#include "core/application_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace adaptviz {

ApplicationManager::ApplicationManager(
    EventQueue& queue, DecisionAlgorithm& algorithm,
    const PerformanceModel& perf, DiskModel& disk, NetworkLink& link,
    BandwidthEstimator& estimator, ApplicationConfiguration& shared_config,
    StatusProvider status, ConfigChangedFn notify, Options options)
    : queue_(queue),
      algorithm_(algorithm),
      perf_(perf),
      disk_(disk),
      link_(link),
      estimator_(estimator),
      config_(shared_config),
      status_(std::move(status)),
      notify_(std::move(notify)),
      options_(options) {
  if (!status_) throw std::invalid_argument("ApplicationManager: null status");
  if (options_.period.seconds() <= 0) {
    throw std::invalid_argument("ApplicationManager: period must be > 0");
  }
}

void ApplicationManager::start() {
  if (running_) return;
  running_ = true;
  invoke();
  schedule_next();
}

void ApplicationManager::stop() { running_ = false; }

void ApplicationManager::set_paused(bool paused) {
  if (config_.paused == paused) return;
  config_.paused = paused;
  ++config_.version;
  if (!options_.config_file_path.empty()) {
    config_.save(options_.config_file_path);
  }
  ADAPTVIZ_LOG_INFO("app-manager", "[%s] steering: simulation %s",
                    hh_mm(queue_.now()).c_str(),
                    paused ? "paused" : "resumed");
  if (notify_) notify_();
}

void ApplicationManager::schedule_next() {
  queue_.schedule_after(
      options_.period,
      [this] {
        if (!running_) return;
        invoke();
        schedule_next();
      },
      "app-manager.tick");
}

Bandwidth ApplicationManager::measure_bandwidth() {
  if (auto est = estimator_.estimate()) return *est;
  // No frame has crossed the link yet: fall back to an explicit probe (the
  // paper times a message across the network). The probe runs alongside the
  // daemons; its duration is not charged to the decision path.
  const auto probe = link_.probe(queue_.now(), options_.probe_size);
  estimator_.record_probe(probe.measured);
  return probe.measured;
}

void ApplicationManager::invoke() {
  const ApplicationStatus st = status_();
  if (st.finished) return;

  DecisionInput in;
  // Application state travels as one slice: every ResourceSnapshot field,
  // present and future, in a single assignment.
  static_cast<ResourceSnapshot&>(in) = st;
  in.free_disk_percent = disk_.free_percent();
  in.free_disk_bytes = disk_.free_space();
  in.disk_capacity = disk_.capacity();
  in.observed_bandwidth = measure_bandwidth();
  in.io_bandwidth = disk_.io_bandwidth();
  in.current_processors = config_.processors;
  in.current_output_interval = config_.output_interval;
  in.perf = &perf_;
  in.min_processors = options_.min_processors;
  in.max_processors = st.max_usable_processors;
  in.bounds = options_.bounds;
  in.observers = observers_;
  if (observers_.has_proposal &&
      observers_.max_output_interval.seconds() > 0 &&
      observers_.max_output_interval < in.bounds.max_output_interval) {
    // The strictest observer proposal tightens the upper bound the
    // algorithms may stretch to; the scientist's floor still wins.
    in.bounds.max_output_interval =
        std::max(observers_.max_output_interval,
                 in.bounds.min_output_interval);
    obs::Observability* const obp = obs::current();
    if (obp != nullptr) {
      obp->metrics().counter("manager.observer_proposals").add(1);
    }
  }

  obs::Observability* const o = obs::current();
  const double deliberate_start = o != nullptr ? o->tracer().host_now() : 0.0;
  Decision d = algorithm_.decide(in);
  const double deliberation =
      o != nullptr ? o->tracer().host_now() - deliberate_start : 0.0;

  // Safety net independent of the algorithm: never let the disk run
  // completely full, and clear the flag with hysteresis once transfers have
  // freed enough space.
  if (in.free_disk_percent <= options_.critical_set_percent) d.critical = true;
  if (config_.critical && !d.critical &&
      in.free_disk_percent < options_.critical_clear_percent) {
    d.critical = true;  // hold until clear threshold
  }

  ADAPTVIZ_LOG_INFO("app-manager", "[%s] %s%s%s", hh_mm(queue_.now()).c_str(),
                    d.note.c_str(), d.critical ? " [CRITICAL]" : "",
                    in.link_degraded ? " [LINK DEGRADED]" : "");

  const bool changed = d.processors != config_.processors ||
                       d.output_interval != config_.output_interval ||
                       d.critical != config_.critical;
  config_.processors = d.processors;
  config_.output_interval = d.output_interval;
  config_.critical = d.critical;
  if (changed) ++config_.version;

  decisions_.push_back(DecisionRecord{queue_.now(), in, d});
  if (o != nullptr) {
    // Every decision on the record: the inputs seen, the knobs chosen,
    // which algorithm chose them, and how long it deliberated.
    o->metrics().counter("manager.decisions").add(1);
    o->metrics().histogram("manager.deliberation_seconds")
        .observe(deliberation);
    char meta[192];
    std::snprintf(meta, sizeof meta,
                  "algo=%s disk=%.1f%% bw=%.2fmbps procs=%d oi_min=%.1f "
                  "critical=%d changed=%d deliberation=%.3gs",
                  algorithm_.name().c_str(), in.free_disk_percent,
                  in.observed_bandwidth.megabits_per_sec(), d.processors,
                  d.output_interval.as_minutes(), d.critical ? 1 : 0,
                  changed ? 1 : 0, deliberation);
    o->tracer().record("manager.decision", obs::TraceClock::kSim,
                       queue_.now().seconds(), 0.0, meta);
  }
  if (changed && !options_.config_file_path.empty()) {
    config_.save(options_.config_file_path);
  }
  if (changed && notify_) notify_();
}

}  // namespace adaptviz
