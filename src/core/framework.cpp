#include "core/framework.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {

const char* to_string(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kGreedyThreshold:
      return "greedy-threshold";
    case AlgorithmKind::kOptimization:
      return "optimization";
    case AlgorithmKind::kStatic:
      return "non-adaptive";
  }
  return "?";
}

namespace {

std::unique_ptr<DecisionAlgorithm> make_algorithm(
    const ExperimentConfig& cfg) {
  switch (cfg.algorithm) {
    case AlgorithmKind::kGreedyThreshold:
      return std::make_unique<GreedyThresholdAlgorithm>(cfg.greedy);
    case AlgorithmKind::kOptimization:
      return std::make_unique<LpOptimizerAlgorithm>(cfg.optimizer);
    case AlgorithmKind::kStatic:
      return std::make_unique<StaticAlgorithm>();
  }
  throw std::invalid_argument("unknown algorithm kind");
}

/// Evenly strided downsample to at most `cap` elements, always keeping the
/// first and last (a series' endpoints carry the run's boundary state).
template <typename T>
void stride_thin(std::vector<T>& v, std::size_t cap) {
  if (cap == 0 || v.size() <= cap) return;
  if (cap == 1) {
    v.erase(v.begin(), v.end() - 1);
    return;
  }
  std::vector<T> out;
  out.reserve(cap);
  const std::size_t n = v.size();
  for (std::size_t k = 0; k < cap; ++k) {
    out.push_back(std::move(v[k * (n - 1) / (cap - 1)]));
  }
  v = std::move(out);
}

}  // namespace

AdaptiveFramework::AdaptiveFramework(ExperimentConfig config)
    : config_(std::move(config)),
      machine_(config_.site.machine, config_.seed),
      disk_(config_.site.disk_capacity, config_.site.io_bandwidth),
      link_(LinkSpec{.nominal = config_.site.wan_nominal,
                     .outages = config_.wan_outages,
                     .efficiency = config_.site.wan_efficiency,
                     .fluctuation_sigma = config_.site.wan_fluctuation_sigma,
                     .failure_probability =
                         config_.faults.transfer_failure_rate},
            config_.seed + 1) {
  if (config_.observability) {
    obs_ = std::make_unique<obs::Observability>(config_.obs);
    ctx_.observability = obs_.get();
  }
  ctx_.has_log_level = config_.log.has_level;
  ctx_.log_level = config_.log.level;
  ctx_.log_sink = config_.log.sink;
  ctx_.run_label = config_.name;
  if (ctx_.observability != nullptr || ctx_.has_log_level ||
      ctx_.log_sink != nullptr) {
    // Install before any component is built so construction-time activity
    // (profiling sweeps run through the pool) is captured too. A config
    // with nothing to install leaves the surrounding context visible —
    // the deprecated ScopedObservability shim path keeps working.
    ctx_scope_ = std::make_unique<ScopedRunContext>(&ctx_);
  }

  // Profile the machine and fit the performance model — the framework's
  // decision algorithms only ever see this fitted curve, never the ground
  // truth.
  BenchmarkProfiler profiler;
  const ProfileData profile = profiler.profile(machine_, /*work_units=*/1.0);
  perf_ = std::make_unique<PerformanceModel>(profile,
                                             config_.site.machine.max_cores);

  // Initial configuration: the greedy strategy's natural starting point —
  // maximum processors, most frequent output. The optimizer overwrites it
  // on the manager's first invocation (at t = 0).
  app_config_.processors = config_.site.machine.max_cores;
  app_config_.output_interval = config_.bounds.min_output_interval;
  app_config_.resolution_km = config_.model.base_resolution_km;

  // Normalize the deprecated steering fields into SteeringOptions: both
  // spellings drive the exact same control-plane path (golden-tested).
  if (!config_.steering.policy && config_.steering_policy) {
    config_.steering.policy = config_.steering_policy;
  }
  if (config_.steering.latency.seconds() < 0) {
    config_.steering.latency = config_.steering_latency;
  }
  if (!config_.steering.replay_log_path.empty()) {
    for (SteeringEvent& e :
         load_steering_log(config_.steering.replay_log_path)) {
      config_.steering.replay.push_back(std::move(e));
    }
  }
  if (config_.steering.policy && !config_.steering.replay.empty()) {
    throw std::invalid_argument(
        "ExperimentConfig: a steering policy and a replay log would "
        "double-steer the run; configure one or the other");
  }
  if (config_.steering.poll_period.seconds() <= 0) {
    throw std::invalid_argument(
        "ExperimentConfig: steering.poll_period must be > 0");
  }
  validate(config_.adversary);

  algorithm_ = make_algorithm(config_);
  VisualizationProcess::Options vis_opts = config_.vis;
  {
    // Every visualized frame becomes a control-plane observation: the
    // in-run policy reacts to it, and an external registration server
    // publishes it to attached monitoring clients.
    auto chained = std::move(vis_opts.on_frame);
    vis_opts.on_frame = [this, chained = std::move(chained)](
                            const Frame& f, const VisRecord& rec) {
      if (chained) chained(f, rec);
      SteeringObservation obs;
      obs.wall_time = rec.wall_time;
      obs.sim_time = rec.sim_time;
      obs.sequence = rec.sequence;
      obs.min_pressure_hpa = f.min_pressure_hpa;
      obs.resolution_km = f.resolution_km;
      obs.nest_active = f.nest_active;
      if (config_.steering.policy) {
        if (auto cmd = config_.steering.policy(obs)) {
          control_->send_command(std::move(*cmd));
        }
      }
      control_->observe(0, obs);
      if (config_.steering.control_plane != nullptr && server_run_id_ >= 0) {
        config_.steering.control_plane->observe(server_run_id_, obs);
      }
    };
  }
  vis_ = std::make_unique<VisualizationProcess>(queue_, vis_opts);
  if (config_.serve.enabled()) {
    // The frame cache + viewer fan-out behind the receiver. Re-renders for
    // catch-up clients reuse the visualization process's renderer on the
    // shared pool.
    ensure_serving();
    for (const ViewerConfig& v : config_.serve.viewers) {
      serving_->attach(v);
    }
    observers_peak_ = serving_->attached_count();
  }
  if (config_.serve.tree.enabled()) {
    // Edge-cache distribution tree below the visualization site: every
    // frame the site visualizes becomes the authoritative copy the
    // regional caches pull through their own (fault-injectable) uplinks.
    tree_ = std::make_unique<EdgeTree>(queue_, config_.serve.tree,
                                       config_.seed + 5);
  }
  // Heavy image rendering runs on the shared pool (one lane per busy
  // render slot); progress records, the cache publish, and steering hooks
  // stay serial.
  receiver_ = std::make_unique<FrameReceiver>(
      queue_,
      [this](const Frame& f) {
        const WallSeconds cost = vis_->record(f);
        if (serving_) serving_->on_frame(f);
        if (tree_) tree_->publish(f);
        return cost;
      },
      config_.vis_workers,
      config_.pool != nullptr ? config_.pool : &ThreadPool::shared(),
      [this](const Frame& f) { vis_->render_frame(f); });
  FrameSender::Options sender_opts;
  sender_opts.retry = config_.faults.retry;
  sender_opts.seed = config_.seed + 4;
  sender_ = std::make_unique<FrameSender>(
      queue_, link_, catalog_, disk_, estimator_,
      [this](const Frame& f) { receiver_->on_frame_arrival(f); },
      sender_opts);

  SimulationProcess::Options sim_opts;
  sim_opts.end_time = config_.sim_window;
  sim_opts.keep_payloads = config_.keep_payloads;
  sim_opts.codec = config_.codec;
  SimulationProcess::Callbacks sim_cbs;
  sim_cbs.on_resolution_signal = [this](double res) {
    job_handler_->on_resolution_signal(res);
  };
  process_ = std::make_unique<SimulationProcess>(
      queue_, machine_, disk_, catalog_, *sender_, app_config_, sim_opts,
      std::move(sim_cbs));

  ModelConfig model_cfg = config_.model;
  model_cfg.analysis.seed = config_.seed + 2;
  job_handler_ = std::make_unique<JobHandler>(
      queue_, *process_, app_config_, disk_, model_cfg,
      ResolutionLadder::table3(), config_.job);

  ApplicationManager::Options mgr_opts = config_.manager;
  mgr_opts.period = config_.decision_period;
  mgr_opts.bounds = config_.bounds;
  mgr_opts.min_processors = config_.site.machine.min_cores;
  manager_ = std::make_unique<ApplicationManager>(
      queue_, *algorithm_, *perf_, disk_, link_, estimator_, app_config_,
      [this] { return status_now(); },
      [this] { job_handler_->on_configuration_changed(); }, mgr_opts);

  telemetry_ = std::make_unique<TelemetryRecorder>(
      queue_, [this] { return sample_now(); }, config_.sample_period);

  // The run's control plane: the single applier of steering events. Always
  // present — with nothing steering it schedules no events and the run is
  // bitwise identical to a plane-less one.
  control_ = std::make_unique<LocalControlPlane>(
      queue_, config_.steering.latency,
      [this](const SteeringEvent& e) { apply_event(e); });
  control_->register_run(config_.name);
  for (const SteeringEvent& e : config_.steering.replay) {
    control_->schedule_replay(e);
  }
  if (config_.steering.control_plane != nullptr) {
    server_run_id_ =
        config_.steering.control_plane->register_run(config_.name);
    // First inbox pull at t=0 (pre-registration events with wall 0 apply
    // immediately), then every poll_period.
    queue_.schedule_at(
        WallSeconds(0.0),
        [this] {
          for (SteeringEvent& e : config_.steering.control_plane->drain(
                   server_run_id_, queue_.now())) {
            control_->steer(0, std::move(e));
          }
          schedule_control_poll();
        },
        "steering.poll");
  }
}

AdaptiveFramework::~AdaptiveFramework() {
  if (config_.steering.control_plane != nullptr && server_run_id_ >= 0) {
    config_.steering.control_plane->deregister_run(server_run_id_);
    server_run_id_ = -1;
  }
}

void AdaptiveFramework::schedule_control_poll() {
  queue_.schedule_after(
      config_.steering.poll_period,
      [this] {
        if (config_.steering.control_plane == nullptr || server_run_id_ < 0) {
          return;
        }
        for (SteeringEvent& e : config_.steering.control_plane->drain(
                 server_run_id_, queue_.now())) {
          control_->steer(0, std::move(e));
        }
        schedule_control_poll();
      },
      "steering.poll");
}

void AdaptiveFramework::ensure_serving() {
  if (serving_) return;
  serving_ = std::make_unique<ViewerSessionManager>(
      queue_, config_.serve.session, config_.seed + 3,
      config_.pool != nullptr ? config_.pool : &ThreadPool::shared(),
      [this](const Frame& f) { vis_->render_frame(f); });
}

void AdaptiveFramework::recompute_observer_digest() {
  ObserverDigest d;
  d.attached = serving_ ? serving_->attached_count() : 0;
  for (const auto& [client, p] : proposals_) {
    if (p.max_output_interval.seconds() > 0) {
      d.has_proposal = true;
      d.max_output_interval =
          d.max_output_interval.seconds() > 0
              ? std::min(d.max_output_interval, p.max_output_interval)
              : p.max_output_interval;
    }
    if (p.resolution_floor_km > 0) {
      d.has_proposal = true;
      d.resolution_floor_km =
          std::max(d.resolution_floor_km, p.resolution_floor_km);
    }
  }
  manager_->set_observer_digest(d);
  // The strictest observer floor caps the resolution ladder like a
  // kSetResolutionFloor command would (sticky: withdrawing a proposal does
  // not un-floor a ladder that already honoured it).
  if (d.resolution_floor_km > 0) {
    job_handler_->set_resolution_floor(d.resolution_floor_km);
  }
}

void AdaptiveFramework::apply_event(const SteeringEvent& e) {
  SteeringEvent record = e;
  record.wall = queue_.now();
  steering_events_.push_back(record);
  switch (e.type) {
    case SteeringEvent::Type::kCommand:
      steering_log_.push_back(
          SteeringRecord{queue_.now(), e.command, record});
      apply_steering(e.command);
      break;
    case SteeringEvent::Type::kView: {
      if (!serving_) {
        ADAPTVIZ_LOG_WARN("steering",
                          "view event from '%s' dropped: serving disabled",
                          e.client.c_str());
        break;
      }
      const std::optional<ClientId> id = serving_->find_client(e.client);
      if (!id.has_value()) {
        ADAPTVIZ_LOG_WARN("steering",
                          "view event from unknown client '%s' dropped",
                          e.client.c_str());
        break;
      }
      serving_->steer_view(*id, e.view);
      break;
    }
    case SteeringEvent::Type::kProposal:
      proposals_[e.client] = e.proposal;
      recompute_observer_digest();
      break;
    case SteeringEvent::Type::kAttach: {
      ensure_serving();
      if (const std::optional<ClientId> id = serving_->find_client(e.client);
          id.has_value()) {
        serving_->reattach(*id);
      } else {
        ViewerConfig v;
        v.name = e.client;
        v.downlink.nominal = Bandwidth::mbps(e.attach.downlink_mbps);
        v.mode = e.attach.mode == "catch-up" ? ViewerMode::kCatchUp
                                             : ViewerMode::kLiveTail;
        v.catchup_start = SimSeconds::hours(e.attach.catchup_start_hours);
        v.join_wall = queue_.now();
        serving_->attach(v);
      }
      observers_peak_ = std::max(observers_peak_, serving_->attached_count());
      recompute_observer_digest();
      break;
    }
    case SteeringEvent::Type::kDetach: {
      if (serving_) {
        if (const std::optional<ClientId> id =
                serving_->find_client(e.client);
            id.has_value() && serving_->attached(*id)) {
          serving_->detach(*id);
        }
      }
      proposals_.erase(e.client);
      recompute_observer_digest();
      break;
    }
  }
}

void AdaptiveFramework::apply_steering(const SteeringCommand& c) {
  switch (c.kind) {
    case SteeringCommand::Kind::kSetOutputBounds:
      manager_->set_bounds(c.bounds);
      break;
    case SteeringCommand::Kind::kSetResolutionFloor:
      job_handler_->set_resolution_floor(c.resolution_floor_km);
      break;
    case SteeringCommand::Kind::kSetNestExtent:
      job_handler_->set_nest_extent(c.nest_extent_deg);
      break;
    case SteeringCommand::Kind::kPause:
      manager_->set_paused(true);
      if (c.auto_resume_after.seconds() > 0) {
        queue_.schedule_after(
            c.auto_resume_after, [this] { manager_->set_paused(false); },
            "steering.auto_resume");
      }
      break;
    case SteeringCommand::Kind::kResume:
      manager_->set_paused(false);
      break;
  }
}

ApplicationStatus AdaptiveFramework::status_now() {
  ApplicationStatus st;
  const WeatherModel* m = process_->model();
  if (m == nullptr) {
    st.resolution_km = config_.model.base_resolution_km;
    st.integration_step =
        SimSeconds(SwSolver::dt_for_resolution_km(st.resolution_km));
    st.remaining_sim_time = config_.sim_window;
    st.max_usable_processors = config_.site.machine.max_cores;
    return st;
  }
  st.work_units = m->work_units();
  st.frame_bytes = m->frame_bytes();
  if (config_.codec.enabled) {
    // The decision layer plans disk and WAN budgets with encoded bytes;
    // the cumulative observed ratio is the estimate for unseen frames.
    st.frame_bytes =
        st.frame_bytes * (1.0 / process_->codec_cumulative_ratio());
  }
  st.integration_step = SimSeconds(m->dt_seconds());
  st.remaining_sim_time =
      std::max(SimSeconds(0.0), config_.sim_window - m->sim_time());
  st.resolution_km = m->modeled_resolution_km();
  st.max_usable_processors =
      std::min(config_.site.machine.max_cores, m->max_usable_processors());
  st.finished = process_->finished();
  st.link_degraded = sender_->link_degraded();
  return st;
}

TelemetrySample AdaptiveFramework::sample_now() {
  TelemetrySample s;
  s.wall_time = queue_.now();
  s.sim_time = process_->sim_time();
  s.free_disk_percent = disk_.free_percent();
  s.processors = app_config_.processors;
  s.output_interval = app_config_.output_interval;
  s.stalled = process_->stalled();
  s.critical = app_config_.critical;
  s.paused = app_config_.paused;
  s.frames_written = process_->frames_written();
  s.frames_sent = sender_->frames_sent();
  s.frames_visualized = receiver_->frames_visualized();
  s.transfer_failures = sender_->transfer_failures();
  s.transfer_retries = sender_->transfer_retries();
  s.link_degraded = sender_->link_degraded();
  s.retry_backoff_seconds = sender_->current_backoff().seconds();
  if (serving_) {
    s.frames_served = serving_->frames_served();
    s.serve_hit_percent = serving_->cache().stats().hit_rate() * 100.0;
    s.cache_bytes = serving_->cache().bytes_cached();
  }
  if (const WeatherModel* m = process_->model()) {
    s.resolution_km = m->modeled_resolution_km();
    s.min_pressure_hpa = m->min_pressure_hpa();
  }
  s.codec_ratio = process_->codec_last_ratio();
  return s;
}

bool AdaptiveFramework::drained() const {
  return catalog_.empty() && !sender_->transfer_in_flight() &&
         receiver_->backlog() == 0 &&
         receiver_->frames_received() == receiver_->frames_visualized() &&
         (serving_ == nullptr || serving_->idle()) &&
         (tree_ == nullptr || tree_->idle());
}

ExperimentResult AdaptiveFramework::run() {
  // The constructor installed the context on the constructing thread;
  // re-install here so an experiment constructed on one thread and run on
  // another (a campaign pool task) still records into its own context.
  std::optional<ScopedRunContext> scope;
  if (ctx_scope_ != nullptr) scope.emplace(&ctx_);

  start_run();
  while (step_once()) {
  }
  return finish_run();
}

void AdaptiveFramework::start_run() {
  if (run_started_) {
    throw std::logic_error("AdaptiveFramework: start_run called twice");
  }
  run_started_ = true;
  ADAPTVIZ_LOG_INFO("framework", "=== %s / %s ===", config_.name.c_str(),
                    to_string(config_.algorithm));
  job_handler_->launch_initial();
  manager_->start();  // makes decision 0 synchronously
  sender_->start();
  telemetry_->start();
  apply_due_adversary_actions();
}

bool AdaptiveFramework::step_once() {
  if (!queue_.step()) return false;
  apply_due_adversary_actions();
  if (process_->finished() && !sim_finish_seen_) {
    sim_finish_seen_ = true;
    sim_finished_wall_ = queue_.now();
  }
  if (queue_.now() >= config_.max_wall) return false;
  if (process_->finished() && drained()) return false;
  return true;
}

int AdaptiveFramework::decisions_made() const {
  return static_cast<int>(manager_->decisions().size());
}

void AdaptiveFramework::apply_due_adversary_actions() {
  const int decided = decisions_made();
  while (adversary_applied_ < config_.adversary.size() &&
         config_.adversary[adversary_applied_].after_decision < decided) {
    const AdversaryAction& a = config_.adversary[adversary_applied_];
    ++adversary_applied_;
    switch (a.kind) {
      case AdversaryActionKind::kBandwidthDrop:
        link_.set_efficiency(link_.spec().efficiency * a.magnitude);
        break;
      case AdversaryActionKind::kFailureBurst:
        link_.set_failure_probability(a.magnitude);
        break;
      case AdversaryActionKind::kDiskShock:
        disk_.inject_external(
            Bytes(static_cast<std::int64_t>(disk_.capacity().as_double() *
                                            a.magnitude)));
        break;
    }
    ADAPTVIZ_LOG_WARN("adversary", "[%s] applied %s",
                      hh_mm(queue_.now()).c_str(), to_string(a).c_str());
  }
}

void AdaptiveFramework::set_adversary_plan(AdversaryPlan plan) {
  validate(plan);
  if (plan.size() < adversary_applied_) {
    throw std::invalid_argument(
        "set_adversary_plan: plan drops already-applied actions");
  }
  for (std::size_t i = 0; i < adversary_applied_; ++i) {
    if (!(plan[i] == config_.adversary[i])) {
      throw std::invalid_argument(
          "set_adversary_plan: already-applied prefix changed");
    }
  }
  config_.adversary = std::move(plan);
  if (run_started_) apply_due_adversary_actions();
}

ExperimentState AdaptiveFramework::snapshot() const {
  if (tree_ != nullptr) {
    throw std::logic_error(
        "AdaptiveFramework::snapshot: the [tree] edge cache does not "
        "support snapshot/restore");
  }
  if (config_.steering.control_plane != nullptr) {
    throw std::logic_error(
        "AdaptiveFramework::snapshot: an external control plane does not "
        "support snapshot/restore");
  }
  ExperimentState s;
  s.queue = queue_.snapshot();
  s.machine = machine_.snapshot();
  s.disk = disk_.snapshot();
  s.link = link_.snapshot();
  s.catalog = catalog_.snapshot();
  s.estimator = estimator_.snapshot();
  s.app_config = app_config_;
  s.process = process_->snapshot();
  s.job_handler = job_handler_->snapshot();
  s.manager = manager_->snapshot();
  s.sender = sender_->snapshot();
  s.receiver = receiver_->snapshot();
  s.vis = vis_->snapshot();
  s.telemetry = telemetry_->snapshot();
  s.control = control_->snapshot();
  if (serving_) s.serving = serving_->snapshot();
  s.steering_log = steering_log_;
  s.steering_events = steering_events_;
  s.proposals = proposals_;
  s.observers_peak = observers_peak_;
  s.run_started = run_started_;
  s.sim_finish_seen = sim_finish_seen_;
  s.sim_finished_wall = sim_finished_wall_;
  s.adversary_applied = adversary_applied_;
  if (obs_) s.metrics = obs_->metrics().snapshot();
  return s;
}

void AdaptiveFramework::restore(const ExperimentState& s) {
  queue_.restore(s.queue);
  machine_.restore(s.machine);
  disk_.restore(s.disk);
  link_.restore(s.link);
  catalog_.restore(s.catalog);
  estimator_.restore(s.estimator);
  app_config_ = s.app_config;
  process_->restore(s.process);
  job_handler_->restore(s.job_handler);
  manager_->restore(s.manager);
  sender_->restore(s.sender);
  receiver_->restore(s.receiver);
  vis_->restore(s.vis);
  telemetry_->restore(s.telemetry);
  control_->restore(s.control);
  if (s.serving.has_value()) {
    ensure_serving();
    serving_->restore(*s.serving);
  } else {
    // The serving subsystem did not exist at capture time (it appears
    // on the first attach event); any manager created since rewinds away
    // with the events that would have referenced it.
    serving_.reset();
  }
  steering_log_ = s.steering_log;
  steering_events_ = s.steering_events;
  proposals_ = s.proposals;
  observers_peak_ = s.observers_peak;
  run_started_ = s.run_started;
  sim_finish_seen_ = s.sim_finish_seen;
  sim_finished_wall_ = s.sim_finished_wall;
  adversary_applied_ = s.adversary_applied;
  if (obs_) obs_->metrics().restore_scalars(s.metrics);
}

ExperimentResult AdaptiveFramework::finish_run() {
  telemetry_->stop();
  manager_->stop();
  sender_->stop();

  ExperimentResult result;
  result.config = config_;
  result.samples = telemetry_->samples();
  result.samples.push_back(sample_now());
  result.vis_records = vis_->records();
  result.decisions = manager_->decisions();
  if (process_->model() != nullptr) {
    result.track = process_->model()->tracker().track();
  }
  result.steering = steering_log_;
  if (serving_) {
    for (int i = 0; i < serving_->viewer_count(); ++i) {
      result.clients.push_back(ClientSeries{serving_->viewer(i).name,
                                            serving_->viewer(i).mode,
                                            serving_->stats(i),
                                            serving_->deliveries(i)});
    }
  }

  ExperimentSummary& sum = result.summary;
  sum.completed = process_->finished();
  sum.wall_elapsed = queue_.now();
  sum.sim_finished_wall = sim_finish_seen_ ? sim_finished_wall_ : queue_.now();
  sum.sim_reached = process_->sim_time();
  sum.peak_disk_used = disk_.peak_used();
  sum.total_stall_time = process_->total_stall_time();
  sum.frames_written = process_->frames_written();
  sum.frames_sent = sender_->frames_sent();
  sum.frames_visualized = receiver_->frames_visualized();
  sum.transfer_failures = sender_->transfer_failures();
  sum.transfer_retries = sender_->transfer_retries();
  sum.restarts = job_handler_->restarts();
  sum.decision_count = static_cast<int>(manager_->decisions().size());
  if (serving_) {
    const FrameCacheStats& cache = serving_->cache().stats();
    sum.viewers = serving_->viewer_count();
    sum.frames_served = serving_->frames_served();
    sum.cache_hits = cache.hits;
    sum.cache_misses = cache.misses;
    sum.cache_evictions = cache.evictions;
    sum.rerenders = serving_->rerenders();
    sum.peak_cache_bytes = cache.peak_bytes;
    sum.steer_renders = serving_->steer_renders();
    sum.steer_dedup = serving_->steer_dedup();
  }
  sum.steering_events = static_cast<std::int64_t>(steering_events_.size());
  sum.observers_peak = observers_peak_;
  if (tree_) {
    sum.tree_tiers = tree_->tier_count();
    sum.tree_leaves = tree_->leaf_count();
    sum.tree_viewers = tree_->modeled_viewers();
    sum.tree_frames_delivered = tree_->frames_delivered();
    sum.tree_origin_wan_bytes = tree_->origin_bytes_on_wan();
    for (int t = 0; t < tree_->tier_count(); ++t) {
      const EdgeTierStats ts = tree_->tier_stats(t);
      sum.tree_fill_retries += ts.fill_retries;
      sum.tree_degraded_events += ts.degraded_events;
    }
  }
  sum.codec_mean_ratio = process_->codec_cumulative_ratio();
  sum.codec_bytes_saved = process_->codec_bytes_saved();
  for (const TelemetrySample& s : result.samples) {
    sum.min_free_disk_percent =
        std::min(sum.min_free_disk_percent, s.free_disk_percent);
  }
  // Thin the recorded series only after every summary aggregate has been
  // computed from the full-resolution data.
  if (config_.max_series_points > 0) {
    stride_thin(result.samples, config_.max_series_points);
    stride_thin(result.vis_records, config_.max_series_points);
    stride_thin(result.track, config_.max_series_points);
    stride_thin(result.steering, config_.max_series_points);
    for (ClientSeries& c : result.clients) {
      stride_thin(c.records, config_.max_series_points);
    }
  }
  if (obs_) {
    result.metrics = obs_->metrics().snapshot();
    result.trace = obs_->tracer().events();
  }
  if (!config_.steering.record_log_path.empty()) {
    // The full (un-thinned) applied stream: replaying it reproduces this
    // run bit for bit.
    save_steering_log(config_.steering.record_log_path, steering_events_);
  }
  if (config_.steering.control_plane != nullptr && server_run_id_ >= 0) {
    config_.steering.control_plane->deregister_run(server_run_id_);
    server_run_id_ = -1;
  }
  ADAPTVIZ_LOG_INFO(
      "framework",
      "done: completed=%d wall=%.1fh sim=%.1fh peak_disk=%s stall=%.1fh "
      "frames w/s/v=%lld/%lld/%lld restarts=%d",
      sum.completed ? 1 : 0, sum.wall_elapsed.as_hours(),
      sum.sim_reached.as_hours(), to_string(sum.peak_disk_used).c_str(),
      sum.total_stall_time.as_hours(),
      static_cast<long long>(sum.frames_written),
      static_cast<long long>(sum.frames_sent),
      static_cast<long long>(sum.frames_visualized), sum.restarts);
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  AdaptiveFramework fw(config);
  return fw.run();
}

}  // namespace adaptviz
