#include "core/lp_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace adaptviz {

LpOptimizerAlgorithm::LpOptimizerAlgorithm(OptimizerConfig config)
    : config_(config) {}

WallSeconds LpOptimizerAlgorithm::overflow_horizon(
    const DecisionInput& in) const {
  // Expected remaining wall time if the run proceeded at the fastest step
  // time: (remaining sim time / ts) steps.
  const double steps =
      in.remaining_sim_time.seconds() / in.integration_step.seconds();
  const double fastest =
      in.perf->fastest_step_time(in.work_units).seconds();
  const double expected = steps * fastest * config_.horizon_safety;
  return WallSeconds(std::clamp(expected, config_.min_horizon.seconds(),
                                config_.max_horizon.seconds()));
}

Decision LpOptimizerAlgorithm::decide(const DecisionInput& in) {
  const PerformanceModel& perf = *in.perf;
  const double ts = in.integration_step.seconds();
  const double o_bytes = in.frame_bytes.as_double();
  const double b = std::max(1.0, in.observed_bandwidth.bytes_per_sec());
  const double tio = o_bytes / in.io_bandwidth.bytes_per_sec();

  const double t_lb = perf.fastest_step_time(in.work_units).seconds();
  const double t_ub =
      perf.slowest_step_time(in.work_units, in.min_processors).seconds();
  const double z_lb =
      ts / std::max(ts, in.bounds.max_output_interval.seconds());
  const double z_ub =
      ts / std::max(ts, in.bounds.min_output_interval.seconds());

  const double n = overflow_horizon(in).seconds();
  const double drain = in.free_disk_bytes.as_double() / n + b;

  // Primary objective: minimize t. The lexicographically small term on z
  // selects among t-optimal vertices per the configured preference.
  const double magnitude = 1e-3 * std::max(t_lb, 1e-6) / std::max(z_ub, 1e-9);
  const double epsilon =
      config_.preference == FrequencyPreference::kMaxResolution ? magnitude
                                                                : -magnitude;

  auto build = [&](bool with_time_constraint) {
    lp::Problem p;
    const int t = p.add_variable("t", t_lb, t_ub, 1.0);  // minimize t
    const int z = p.add_variable("z", z_lb, z_ub, -epsilon);
    const int y = p.add_variable("y", 0.0, lp::kInfinity, 0.0);
    // y <= z
    p.add_constraint("transfer_le_output", {{y, 1.0}, {z, -1.0}},
                     lp::Relation::kLessEqual, 0.0);
    if (with_time_constraint) {
      // (5): t + TIO*z - (O/b)*y <= 0
      p.add_constraint("continuous_visualization",
                       {{t, 1.0}, {z, tio}, {y, -o_bytes / b}},
                       lp::Relation::kLessEqual, 0.0);
    }
    // (6): t + TIO*z - (O/drain)*z >= 0
    p.add_constraint("disk_overflow",
                     {{t, 1.0}, {z, tio - o_bytes / drain}},
                     lp::Relation::kGreaterEqual, 0.0);
    return p;
  };

  lp::Solution sol = lp::solve(build(true));
  bool relaxed = false;
  if (!sol.optimal()) {
    // Fast-network corner: even T_LB cannot saturate the link. Drop eq. 5.
    sol = lp::solve(build(false));
    relaxed = true;
  }

  Decision out;
  if (!sol.optimal()) {
    // Defensive fallback: slowest rate, sparsest output. With valid bounds
    // the relaxed LP is always feasible (z = z_LB, t as needed), so this
    // path indicates inconsistent inputs rather than a real regime.
    out.processors = in.min_processors;
    out.output_interval = in.bounds.max_output_interval;
    out.note = "LP infeasible even after relaxation; conservative fallback";
    ADAPTVIZ_LOG_WARN("optimizer", "%s", out.note.c_str());
  } else {
    const double t = sol.values[0];
    const double z = std::max(sol.values[1], 1e-9);
    out.processors = perf.processors_for(WallSeconds(t), in.work_units);
    out.output_interval = SimSeconds(ts / z);  // eq. 9
    out.note = format(
        "LP%s: t=%.2fs z=%.4f y=%.4f (b=%s, D=%s, n=%.1fh) -> %d procs, "
        "OI=%.1f sim-min",
        relaxed ? " (eq.5 relaxed)" : "", t, z, sol.values[2],
        to_string(in.observed_bandwidth).c_str(),
        to_string(in.free_disk_bytes).c_str(), n / 3600.0, out.processors,
        ts / z / 60.0);
  }

  out.output_interval = quantize_output_interval(
      out.output_interval, in.integration_step, in.bounds);
  out.processors =
      std::clamp(out.processors, in.min_processors, in.max_processors);
  return out;
}

}  // namespace adaptviz
