#include "core/adversary.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace adaptviz {

const char* to_string(AdversaryActionKind kind) {
  switch (kind) {
    case AdversaryActionKind::kBandwidthDrop:
      return "bandwidth-drop";
    case AdversaryActionKind::kFailureBurst:
      return "failure-burst";
    case AdversaryActionKind::kDiskShock:
      return "disk-shock";
  }
  return "?";
}

AdversaryActionKind adversary_action_kind_from(const std::string& name) {
  if (name == "bandwidth-drop") return AdversaryActionKind::kBandwidthDrop;
  if (name == "failure-burst") return AdversaryActionKind::kFailureBurst;
  if (name == "disk-shock") return AdversaryActionKind::kDiskShock;
  throw std::runtime_error(
      "adversary: unknown action kind '" + name +
      "' (expected bandwidth-drop | failure-burst | disk-shock)");
}

std::string to_string(const AdversaryAction& action) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%d:%s=%.17g", action.after_decision,
                to_string(action.kind), action.magnitude);
  return buf;
}

AdversaryAction adversary_action_from(const std::string& text) {
  const auto colon = text.find(':');
  const auto eq = text.find('=');
  if (colon == std::string::npos || eq == std::string::npos || eq < colon) {
    throw std::runtime_error("adversary: malformed action '" + text +
                             "' (expected <k>:<kind>=<magnitude>)");
  }
  AdversaryAction a;
  try {
    std::size_t used = 0;
    a.after_decision = std::stoi(text.substr(0, colon), &used);
    if (used != colon) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw std::runtime_error("adversary: bad decision index in '" + text +
                             "'");
  }
  a.kind = adversary_action_kind_from(text.substr(colon + 1, eq - colon - 1));
  const std::string mag = text.substr(eq + 1);
  char* end = nullptr;
  a.magnitude = std::strtod(mag.c_str(), &end);
  if (mag.empty() || end == nullptr || *end != '\0') {
    throw std::runtime_error("adversary: bad magnitude in '" + text + "'");
  }
  return a;
}

void validate(const AdversaryPlan& plan) {
  int last = 0;
  for (const AdversaryAction& a : plan) {
    if (a.after_decision < 0) {
      throw std::invalid_argument("adversary plan: negative decision index");
    }
    if (a.after_decision < last) {
      throw std::invalid_argument(
          "adversary plan: actions must be sorted by decision index");
    }
    last = a.after_decision;
    switch (a.kind) {
      case AdversaryActionKind::kBandwidthDrop:
        if (!(a.magnitude > 0.0 && a.magnitude <= 1.0)) {
          throw std::invalid_argument(
              "adversary plan: bandwidth-drop magnitude must be in (0, 1]");
        }
        break;
      case AdversaryActionKind::kFailureBurst:
        if (!(a.magnitude >= 0.0 && a.magnitude <= 1.0)) {
          throw std::invalid_argument(
              "adversary plan: failure-burst magnitude must be in [0, 1]");
        }
        break;
      case AdversaryActionKind::kDiskShock:
        if (!(a.magnitude > 0.0 && a.magnitude <= 1.0)) {
          throw std::invalid_argument(
              "adversary plan: disk-shock magnitude must be in (0, 1]");
        }
        break;
    }
  }
}

std::string to_string(const AdversaryPlan& plan) {
  std::string out;
  for (const AdversaryAction& a : plan) {
    if (!out.empty()) out += ' ';
    out += to_string(a);
  }
  return out;
}

AdversaryPlan adversary_plan_from(const std::string& text) {
  AdversaryPlan plan;
  std::istringstream in(text);
  std::string token;
  while (in >> token) plan.push_back(adversary_action_from(token));
  return plan;
}

}  // namespace adaptviz
