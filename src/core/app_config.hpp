// The application configuration file.
//
// Section III: "The application manager stores these parameters to an
// application configuration file. The application manager also notifies the
// other components ... if the available free disk space becomes
// significantly low by setting a CRITICAL flag in the application
// configuration file." The simulation process and job handler poll this
// configuration; a version counter makes change detection trivial.
//
// The struct round-trips through the INI format so the on-disk protocol the
// paper describes is real (examples write/read an actual file); inside the
// event-driven experiments the same object is shared in memory.
#pragma once

#include <string>

#include "util/ini.hpp"
#include "util/units.hpp"

namespace adaptviz {

struct ApplicationConfiguration {
  /// Number of processors the simulation should run on.
  int processors = 1;
  /// Output interval in simulated time (the inverse of output frequency).
  SimSeconds output_interval{180.0};
  /// Modeled simulation resolution (km); changed by the resolution ladder,
  /// recorded here so a restart picks it up.
  double resolution_km = 24.0;
  /// Set when free disk space is critically low: the simulation stalls.
  bool critical = false;
  /// Set when the scientist paused the run from the visualization site
  /// (steering); like CRITICAL, it holds the simulation in place without a
  /// restart.
  bool paused = false;
  /// Monotone change counter; bumped on every write by the manager.
  long version = 0;

  [[nodiscard]] IniDocument to_ini() const;
  static ApplicationConfiguration from_ini(const IniDocument& doc);

  void save(const std::string& path) const;
  static ApplicationConfiguration load(const std::string& path);

  friend bool operator==(const ApplicationConfiguration&,
                         const ApplicationConfiguration&) = default;

  /// True when fields that force a simulation restart differ (CRITICAL flag
  /// changes do not restart the run; they pause it in place).
  [[nodiscard]] bool requires_restart(
      const ApplicationConfiguration& other) const {
    return processors != other.processors ||
           output_interval != other.output_interval ||
           resolution_km != other.resolution_km;
  }
};

}  // namespace adaptviz
