// Experiment telemetry: the time series behind the paper's figures.
//
//  * Fig 5 (simulation progress): (wall_time, sim_time)
//  * Fig 6 (free disk):           (wall_time, free_disk_percent)
//  * Fig 7 (visualization):       VisRecord series from the vis process
//  * Fig 8 (adaptivity):          (wall_time, processors, output_interval)
//  * Serving (beyond the paper):  (wall_time, frames_served, cache hit
//    rate, resident cache bytes) — viewer-side progress of the
//    multi-client fan-out (src/serve)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "resources/event_queue.hpp"
#include "util/calendar.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

namespace adaptviz {

struct TelemetrySample {
  WallSeconds wall_time{};
  SimSeconds sim_time{};
  double free_disk_percent = 100.0;
  int processors = 0;
  SimSeconds output_interval{};
  double resolution_km = 0.0;
  double min_pressure_hpa = 0.0;
  bool stalled = false;
  bool critical = false;
  bool paused = false;
  std::int64_t frames_written = 0;
  std::int64_t frames_sent = 0;
  std::int64_t frames_visualized = 0;
  // Transport reliability (all zero on a failure-free link).
  std::int64_t transfer_failures = 0;
  std::int64_t transfer_retries = 0;
  bool link_degraded = false;
  /// Backoff delay of the retry pending at sample time (0 when healthy).
  double retry_backoff_seconds = 0.0;
  // Serving subsystem (all zero / 100 when no viewers are configured).
  std::int64_t frames_served = 0;
  double serve_hit_percent = 100.0;
  Bytes cache_bytes{};
  /// Frame codec compression ratio of the most recent output (1.0 with the
  /// codec off or before the first frame).
  double codec_ratio = 1.0;
};

/// One column of the telemetry series: CSV header name, unit (for docs
/// and the summary line), and the accessor producing a sample's cell.
struct TelemetryColumn {
  const char* name;
  const char* unit;
  CsvTable::Cell (*cell)(const TelemetrySample&, const CalendarEpoch&);
};

/// The declarative column schema — the single source of truth for the
/// samples CSV. Header order, cell serialization and the summary printer
/// all derive from this table, which used to be three hand-maintained
/// parallel lists that could (and did) drift. Adding a telemetry field is
/// now one entry here and nowhere else.
const std::vector<TelemetryColumn>& telemetry_schema();

/// Column names in schema order. Byte-identical to the historical
/// hand-written header (asserted by the golden-header test).
std::vector<std::string> telemetry_columns();

/// One CSV row for `s` in schema order.
std::vector<CsvTable::Cell> telemetry_row(const TelemetrySample& s,
                                          const CalendarEpoch& epoch);

/// Human-readable `name=value[unit]` rendering of one sample, derived
/// from the same schema (adaptviz_run's final-state line).
std::string telemetry_summary(const TelemetrySample& s,
                              const CalendarEpoch& epoch);

class TelemetryRecorder {
 public:
  using SampleFn = std::function<TelemetrySample()>;

  /// Samples `fn` immediately and then every `period` until stop().
  TelemetryRecorder(EventQueue& queue, SampleFn fn, WallSeconds period);

  void start();
  void stop();

  [[nodiscard]] const std::vector<TelemetrySample>& samples() const {
    return samples_;
  }

  /// Recorded series + the epoch guard. A tick pending in the EventQueue
  /// checks the epoch, so a restore that rewinds both stays consistent.
  struct State {
    bool running = false;
    std::uint64_t epoch = 0;
    std::vector<TelemetrySample> samples;
  };
  [[nodiscard]] State snapshot() const {
    return State{running_, epoch_, samples_};
  }
  void restore(const State& s) {
    running_ = s.running;
    epoch_ = s.epoch;
    samples_ = s.samples;
  }

 private:
  void tick(std::uint64_t epoch);

  EventQueue& queue_;
  SampleFn fn_;
  WallSeconds period_;
  bool running_ = false;
  /// Bumped by every start(): a tick scheduled before a stop()/start()
  /// cycle sees a stale epoch and dies instead of starting a second
  /// sampling chain (which doubled the sample rate after a restart).
  std::uint64_t epoch_ = 0;
  std::vector<TelemetrySample> samples_;
};

}  // namespace adaptviz
