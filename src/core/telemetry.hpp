// Experiment telemetry: the time series behind the paper's figures.
//
//  * Fig 5 (simulation progress): (wall_time, sim_time)
//  * Fig 6 (free disk):           (wall_time, free_disk_percent)
//  * Fig 7 (visualization):       VisRecord series from the vis process
//  * Fig 8 (adaptivity):          (wall_time, processors, output_interval)
//  * Serving (beyond the paper):  (wall_time, frames_served, cache hit
//    rate, resident cache bytes) — viewer-side progress of the
//    multi-client fan-out (src/serve)
#pragma once

#include <functional>
#include <vector>

#include "resources/event_queue.hpp"
#include "util/units.hpp"

namespace adaptviz {

struct TelemetrySample {
  WallSeconds wall_time{};
  SimSeconds sim_time{};
  double free_disk_percent = 100.0;
  int processors = 0;
  SimSeconds output_interval{};
  double resolution_km = 0.0;
  double min_pressure_hpa = 0.0;
  bool stalled = false;
  bool critical = false;
  bool paused = false;
  std::int64_t frames_written = 0;
  std::int64_t frames_sent = 0;
  std::int64_t frames_visualized = 0;
  // Transport reliability (all zero on a failure-free link).
  std::int64_t transfer_failures = 0;
  std::int64_t transfer_retries = 0;
  bool link_degraded = false;
  /// Backoff delay of the retry pending at sample time (0 when healthy).
  double retry_backoff_seconds = 0.0;
  // Serving subsystem (all zero / 100 when no viewers are configured).
  std::int64_t frames_served = 0;
  double serve_hit_percent = 100.0;
  Bytes cache_bytes{};
};

class TelemetryRecorder {
 public:
  using SampleFn = std::function<TelemetrySample()>;

  /// Samples `fn` immediately and then every `period` until stop().
  TelemetryRecorder(EventQueue& queue, SampleFn fn, WallSeconds period);

  void start();
  void stop();

  [[nodiscard]] const std::vector<TelemetrySample>& samples() const {
    return samples_;
  }

 private:
  void tick();

  EventQueue& queue_;
  SampleFn fn_;
  WallSeconds period_;
  bool running_ = false;
  std::vector<TelemetrySample> samples_;
};

}  // namespace adaptviz
