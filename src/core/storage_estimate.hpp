// Analytic disk-exhaustion estimate (paper Table I).
//
// For a simulation producing a frame of size O every (t + TIO) wall seconds
// while a network drains the disk at bandwidth b, the stable storage of
// size D is exhausted after
//
//   T_full = D / (O / (t + TIO) - b)
//
// (infinite when the network keeps up). Table I instantiates this for the
// paper's projected petascale run: 4486x4486 points at 10 km, ~31 GB per
// frame, 1.2 s per step on 16,384 cores, 5 GBps parallel I/O.
#pragma once

#include <optional>

#include "util/units.hpp"

namespace adaptviz {

struct StorageEstimateInput {
  Bytes frame_size = Bytes::gigabytes(31);
  WallSeconds step_time{1.2};
  Bandwidth io_bandwidth = Bandwidth::gigabytes_per_second(5);
  Bandwidth network_bandwidth = Bandwidth::gbps(1);
  Bytes disk_capacity = Bytes::terabytes(5);
  /// Frames produced per simulation step (1 = output every step).
  double frames_per_step = 1.0;
};

/// Wall time until the disk is full; nullopt when the inflow never exceeds
/// the network drain (storage never fills).
std::optional<WallSeconds> time_until_storage_full(
    const StorageEstimateInput& input);

}  // namespace adaptviz
