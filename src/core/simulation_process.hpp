// Simulation process: drives the weather model on the cluster.
//
// Event-driven counterpart of the paper's WRF run: each simulation step
// costs ground-truth machine time for the configured processor count; every
// output_interval of simulated time a frame is written to the disk model
// (costing TIO at the parallel-I/O rate) and registered with the frame
// catalog for the sender. The process
//
//  * stalls when the CRITICAL flag is set in the shared application
//    configuration ("the simulation process stalls execution, and
//    periodically checks the application configuration file"),
//  * stalls when the disk cannot take the next frame (continuing without
//    output would leave "gaps" in the visualization — paper Section III-B),
//  * signals the job handler when the cyclone crosses a Table III pressure
//    threshold ("whenever WRF finds the values of its certain variables drop
//    below a certain threshold, it stops and the job handler reschedules
//    it"), and
//  * supports stop-with-checkpoint so the job handler can reschedule it
//    with a new configuration.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/app_config.hpp"
#include "dataio/codec.hpp"
#include "dataio/frame.hpp"
#include "resources/cluster.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "transport/sender.hpp"
#include "weather/model.hpp"

namespace adaptviz {

class SimulationProcess {
 public:
  struct Options {
    /// Simulated time at which the run is complete.
    SimSeconds end_time = SimSeconds::hours(60.0);
    /// How often a stalled process re-checks the configuration/disk.
    WallSeconds stall_poll = WallSeconds::minutes(5.0);
    /// Attach real field payloads to frames (examples; costs memory).
    bool keep_payloads = false;
    /// Lossless frame codec (off by default). When enabled, every frame's
    /// compute fields are encoded (and roundtrip-verified) for real; the
    /// measured per-frame ratio scales the modeled frame bytes that flow
    /// into disk, WAN, and cache accounting.
    CodecOptions codec{};
  };

  struct Callbacks {
    /// The storm crossed a resolution threshold; argument is the new
    /// Table III resolution. The process keeps running until stopped.
    std::function<void(double)> on_resolution_signal;
    /// The simulation reached end_time.
    std::function<void()> on_finished;
  };

  SimulationProcess(EventQueue& queue, GroundTruthMachine& machine,
                    DiskModel& disk, FrameCatalog& catalog,
                    FrameSender& sender,
                    const ApplicationConfiguration& shared_config,
                    Options options, Callbacks callbacks);

  /// Takes ownership of a model and starts stepping. The model's resolution
  /// must already match the shared configuration.
  void start(std::unique_ptr<WeatherModel> model);

  /// Requests a stop at the next step boundary; `stopped` receives the
  /// checkpoint. No further events fire for this process afterwards.
  void request_stop(std::function<void(NclFile)> stopped);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const WeatherModel* model() const { return model_.get(); }
  [[nodiscard]] SimSeconds sim_time() const;

  // --- Statistics ---
  [[nodiscard]] std::int64_t steps_executed() const { return steps_; }
  [[nodiscard]] std::int64_t frames_written() const { return frames_; }
  /// Includes a still-open stall up to the current virtual time.
  [[nodiscard]] WallSeconds total_stall_time() const;

  // --- Codec statistics (identity values when the codec is off) ---
  /// Measured compression ratio of the most recent frame (1.0 before the
  /// first frame or with the codec disabled).
  [[nodiscard]] double codec_last_ratio() const {
    return codec_ ? codec_->last_ratio() : 1.0;
  }
  /// Cumulative raw/encoded ratio across the whole run so far.
  [[nodiscard]] double codec_cumulative_ratio() const {
    return codec_ ? codec_->cumulative_ratio() : 1.0;
  }
  /// Modeled bytes the codec kept off disk and off the wire so far.
  [[nodiscard]] Bytes codec_bytes_saved() const { return codec_saved_; }

  /// Deep-copyable process state: the weather model (full solver fields +
  /// step counter; the solver's mutable scratch copies along but is
  /// recomputed every step, so it carries no information), the codec's
  /// prediction history, and every latch/counter of the step/output state
  /// machine. Model and codec ride as shared immutable copies so the
  /// State value itself stays cheap to copy; restore() materializes fresh
  /// mutable instances from them.
  struct State {
    std::shared_ptr<const WeatherModel> model;
    std::shared_ptr<const FrameFieldCodec> codec;
    Bytes codec_saved{};
    std::optional<Bytes> pending_encoded;
    bool running = false;
    bool stalled = false;
    bool finished = false;
    bool step_in_flight = false;
    std::function<void(NclFile)> stop_callback;
    int launch_processors = 1;
    SimSeconds launch_output_interval{180.0};
    SimSeconds next_output_due{0.0};
    std::int64_t next_sequence = 0;
    double last_signaled_resolution = 0.0;
    std::int64_t steps = 0;
    std::int64_t frames = 0;
    WallSeconds stall_time{0.0};
    WallSeconds stall_started{0.0};
  };
  [[nodiscard]] State snapshot() const;
  void restore(const State& s);

 private:
  void schedule_step();
  void complete_step();
  void try_write_frame();
  /// Runs the codec on the model's current compute fields and returns the
  /// encoded modeled size for a frame whose raw modeled size is `raw`.
  Bytes encode_pending_frame(Bytes raw);
  void enter_stall(const char* reason);
  void stall_check();
  void finish_or_continue();
  [[nodiscard]] bool stop_pending() const {
    return static_cast<bool>(stop_callback_);
  }
  void deliver_stop();

  EventQueue& queue_;
  GroundTruthMachine& machine_;
  DiskModel& disk_;
  FrameCatalog& catalog_;
  FrameSender& sender_;
  const ApplicationConfiguration& config_;
  Options options_;
  Callbacks callbacks_;

  std::unique_ptr<WeatherModel> model_;
  /// Null when Options::codec.enabled is false.
  std::unique_ptr<FrameFieldCodec> codec_;
  Bytes codec_saved_{};
  /// Encoded size of the frame currently being written, kept across a
  /// disk-full stall so the retry does not re-encode (and re-rotate the
  /// codec history for) the same output.
  std::optional<Bytes> pending_encoded_;
  bool running_ = false;
  bool stalled_ = false;
  bool finished_ = false;
  bool step_in_flight_ = false;
  std::function<void(NclFile)> stop_callback_;

  /// Knobs snapshotted at start(): processors and output interval only
  /// change through a job-handler restart (as with a real WRF job); the
  /// CRITICAL flag, by contrast, is read live from the shared config.
  int launch_processors_ = 1;
  SimSeconds launch_output_interval_{180.0};

  SimSeconds next_output_due_{0.0};
  std::int64_t next_sequence_ = 0;
  double last_signaled_resolution_ = 0.0;

  std::int64_t steps_ = 0;
  std::int64_t frames_ = 0;
  WallSeconds stall_time_{0.0};
  WallSeconds stall_started_{0.0};
};

}  // namespace adaptviz
