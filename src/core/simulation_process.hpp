// Simulation process: drives the weather model on the cluster.
//
// Event-driven counterpart of the paper's WRF run: each simulation step
// costs ground-truth machine time for the configured processor count; every
// output_interval of simulated time a frame is written to the disk model
// (costing TIO at the parallel-I/O rate) and registered with the frame
// catalog for the sender. The process
//
//  * stalls when the CRITICAL flag is set in the shared application
//    configuration ("the simulation process stalls execution, and
//    periodically checks the application configuration file"),
//  * stalls when the disk cannot take the next frame (continuing without
//    output would leave "gaps" in the visualization — paper Section III-B),
//  * signals the job handler when the cyclone crosses a Table III pressure
//    threshold ("whenever WRF finds the values of its certain variables drop
//    below a certain threshold, it stops and the job handler reschedules
//    it"), and
//  * supports stop-with-checkpoint so the job handler can reschedule it
//    with a new configuration.
#pragma once

#include <functional>
#include <memory>

#include "core/app_config.hpp"
#include "dataio/frame.hpp"
#include "resources/cluster.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "transport/sender.hpp"
#include "weather/model.hpp"

namespace adaptviz {

class SimulationProcess {
 public:
  struct Options {
    /// Simulated time at which the run is complete.
    SimSeconds end_time = SimSeconds::hours(60.0);
    /// How often a stalled process re-checks the configuration/disk.
    WallSeconds stall_poll = WallSeconds::minutes(5.0);
    /// Attach real field payloads to frames (examples; costs memory).
    bool keep_payloads = false;
  };

  struct Callbacks {
    /// The storm crossed a resolution threshold; argument is the new
    /// Table III resolution. The process keeps running until stopped.
    std::function<void(double)> on_resolution_signal;
    /// The simulation reached end_time.
    std::function<void()> on_finished;
  };

  SimulationProcess(EventQueue& queue, GroundTruthMachine& machine,
                    DiskModel& disk, FrameCatalog& catalog,
                    FrameSender& sender,
                    const ApplicationConfiguration& shared_config,
                    Options options, Callbacks callbacks);

  /// Takes ownership of a model and starts stepping. The model's resolution
  /// must already match the shared configuration.
  void start(std::unique_ptr<WeatherModel> model);

  /// Requests a stop at the next step boundary; `stopped` receives the
  /// checkpoint. No further events fire for this process afterwards.
  void request_stop(std::function<void(NclFile)> stopped);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const WeatherModel* model() const { return model_.get(); }
  [[nodiscard]] SimSeconds sim_time() const;

  // --- Statistics ---
  [[nodiscard]] std::int64_t steps_executed() const { return steps_; }
  [[nodiscard]] std::int64_t frames_written() const { return frames_; }
  /// Includes a still-open stall up to the current virtual time.
  [[nodiscard]] WallSeconds total_stall_time() const;

 private:
  void schedule_step();
  void complete_step();
  void try_write_frame();
  void enter_stall(const char* reason);
  void stall_check();
  void finish_or_continue();
  [[nodiscard]] bool stop_pending() const {
    return static_cast<bool>(stop_callback_);
  }
  void deliver_stop();

  EventQueue& queue_;
  GroundTruthMachine& machine_;
  DiskModel& disk_;
  FrameCatalog& catalog_;
  FrameSender& sender_;
  const ApplicationConfiguration& config_;
  Options options_;
  Callbacks callbacks_;

  std::unique_ptr<WeatherModel> model_;
  bool running_ = false;
  bool stalled_ = false;
  bool finished_ = false;
  bool step_in_flight_ = false;
  std::function<void(NclFile)> stop_callback_;

  /// Knobs snapshotted at start(): processors and output interval only
  /// change through a job-handler restart (as with a real WRF job); the
  /// CRITICAL flag, by contrast, is read live from the shared config.
  int launch_processors_ = 1;
  SimSeconds launch_output_interval_{180.0};

  SimSeconds next_output_due_{0.0};
  std::int64_t next_sequence_ = 0;
  double last_signaled_resolution_ = 0.0;

  std::int64_t steps_ = 0;
  std::int64_t frames_ = 0;
  WallSeconds stall_time_{0.0};
  WallSeconds stall_started_{0.0};
};

}  // namespace adaptviz
