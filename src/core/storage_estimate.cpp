#include "core/storage_estimate.hpp"

#include <stdexcept>

namespace adaptviz {

std::optional<WallSeconds> time_until_storage_full(
    const StorageEstimateInput& in) {
  if (in.frame_size <= Bytes(0) || in.step_time.seconds() <= 0 ||
      in.io_bandwidth.bytes_per_sec() <= 0 || in.disk_capacity <= Bytes(0) ||
      in.frames_per_step <= 0) {
    throw std::invalid_argument("time_until_storage_full: bad input");
  }
  // One output cycle: solve 1/frames_per_step steps, then write the frame.
  const double tio =
      in.frame_size.as_double() / in.io_bandwidth.bytes_per_sec();
  const double cycle = in.step_time.seconds() / in.frames_per_step + tio;
  const double inflow = in.frame_size.as_double() / cycle;
  const double outflow = in.network_bandwidth.bytes_per_sec();
  if (inflow <= outflow) return std::nullopt;
  return WallSeconds(in.disk_capacity.as_double() / (inflow - outflow));
}

}  // namespace adaptviz
