// Decision-algorithm interface (Section IV).
//
// "The decision algorithm invoked by the application manager determines
// 1) the number of processors, and 2) the frequency of output of climate
// data ... for a given 1) resolution of simulation, 2) the bandwidth of the
// network ... and 3) the available free disk space."
#pragma once

#include <memory>
#include <string>

#include "perf/perf_model.hpp"
#include "util/units.hpp"

namespace adaptviz {

/// Output-interval policy shared by both algorithms. The paper's greedy runs
/// start at a 3-simulated-minute interval (Fig. 8) and both algorithms
/// respect the scientist's 25-simulated-minute upper bound
/// (upper_output_interval).
struct DecisionBounds {
  SimSeconds min_output_interval = SimSeconds::minutes(3.0);
  SimSeconds max_output_interval = SimSeconds::minutes(25.0);
};

/// Live application state shared by the framework's status callback
/// (ApplicationStatus) and the algorithm input (DecisionInput). These
/// fields used to be duplicated field-by-field in both structs, copied
/// manually inside ApplicationManager::invoke(); both now inherit this
/// one definition so the copy is a single slice assignment and the two
/// views can never drift apart.
struct ResourceSnapshot {
  double work_units = 1.0;            // per-step cost at current resolution
  Bytes frame_bytes{};                // O: output size of one frame
  SimSeconds integration_step{60.0};  // ts: simulated time per step
  SimSeconds remaining_sim_time{0.0};
  double resolution_km = 24.0;
  /// Frame-sender escalation: true after N consecutive transfer failures
  /// (exponential-backoff retries are in progress and the bandwidth
  /// estimate is stale). Algorithms may treat this like an outage.
  bool link_degraded = false;
};

/// The third decision input (alongside resource observations and the
/// application snapshot): what the attached observers are asking for.
/// The control plane aggregates per-client KnobProposals into the
/// strictest request — smallest proposed max_output_interval, largest
/// proposed resolution floor — and the application manager tightens the
/// bounds the algorithms work within accordingly. Zero values mean "no
/// opinion on that knob".
struct ObserverDigest {
  int attached = 0;            // observers currently attached
  bool has_proposal = false;   // any live proposal at all
  SimSeconds max_output_interval{0.0};  // strictest "frames this often"
  double resolution_floor_km = 0.0;     // strictest "don't refine below"
};

/// Everything the application manager hands the algorithm on one
/// invocation. Application-state fields (work_units, frame_bytes,
/// integration_step, remaining_sim_time, resolution_km, link_degraded)
/// are inherited from ResourceSnapshot and remain accessible exactly as
/// before (`in.work_units`, ...).
struct DecisionInput : ResourceSnapshot {
  // --- Resource observations ---
  double free_disk_percent = 100.0;   // the `df` reading
  Bytes free_disk_bytes{};
  Bytes disk_capacity{};
  Bandwidth observed_bandwidth{};     // smoothed sim->vis estimate
  Bandwidth io_bandwidth{};           // parallel file system write rate

  // --- Current configuration ---
  int current_processors = 1;
  SimSeconds current_output_interval{180.0};

  // --- Capabilities ---
  const PerformanceModel* perf = nullptr;  // fitted t(p); never null
  int min_processors = 1;
  int max_processors = 1;  // min(machine, WRF decomposition limit)
  DecisionBounds bounds{};

  // --- Observer input (control plane) ---
  ObserverDigest observers{};
};

/// What the algorithm decides: the two knobs plus the CRITICAL flag.
struct Decision {
  int processors = 1;
  SimSeconds output_interval{180.0};
  bool critical = false;
  /// One-line rationale for logs/telemetry ("disk 42% -> stretch OI").
  std::string note;
};

class DecisionAlgorithm {
 public:
  virtual ~DecisionAlgorithm() = default;
  [[nodiscard]] virtual Decision decide(const DecisionInput& input) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Rounds an output interval to a positive multiple of the integration step
/// (OI must be a multiple of ts — eq. 9's premise), clamped to bounds.
SimSeconds quantize_output_interval(SimSeconds oi, SimSeconds ts,
                                    const DecisionBounds& bounds);

}  // namespace adaptviz
