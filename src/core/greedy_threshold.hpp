// Greedy-Threshold decision algorithm (paper Algorithm 1).
//
// Strategy: run at the maximum simulation rate (max processors) and output
// every few simulated minutes, then *react* to the disk filling:
//
//   D <= 10%            -> set CRITICAL (simulation stalls)
//   10% < D <= 50%      -> if D >= 25%: stretch the output interval
//                            newOI = oldOI + (50-D)/25 * (maxOI - oldOI)
//                          else if already at maxOI: slow the simulation
//                            newtime = oldtime + (25-D)/15 * (maxtime - oldtime)
//   D >= 60%            -> reverse: speed the simulation first
//                            newtime = oldtime - (D-60)/40 * (oldtime - mintime)
//                          then shrink the output interval
//                            newOI = oldOI - (D-60)/40 * (oldOI - minOI)
//
// ("this algorithm gives more preference to maximizing the simulation rate
// than to maximizing the output frequency.")
#pragma once

#include "core/decision.hpp"

namespace adaptviz {

struct GreedyThresholds {
  /// lowdiskspace-thresholdset = {50, 25}; CRITICAL below `critical`.
  double low_upper = 50.0;
  double low_lower = 25.0;
  double critical = 10.0;
  /// highdiskspace-thresholdset = {60}.
  double high = 60.0;
};

class GreedyThresholdAlgorithm final : public DecisionAlgorithm {
 public:
  explicit GreedyThresholdAlgorithm(GreedyThresholds thresholds = {});

  [[nodiscard]] Decision decide(const DecisionInput& input) override;
  [[nodiscard]] std::string name() const override {
    return "greedy-threshold";
  }

  [[nodiscard]] const GreedyThresholds& thresholds() const {
    return thresholds_;
  }

 private:
  GreedyThresholds thresholds_;
};

}  // namespace adaptviz
