// Scenario files: INI-driven experiment configuration.
//
// The paper's future work asks to run "a larger grid and ... different
// configuration settings"; scenario files make any configuration runnable
// without recompiling (see tools/adaptviz_run and scenarios/*.ini):
//
//   [experiment]
//   name = my-run
//   algorithm = optimization          ; or greedy-threshold
//   sim_window_hours = 60
//   max_wall_hours = 60
//   decision_period_hours = 1.5
//   compute_scale = 8
//   seed = 42
//   vis_workers = 1
//
//   [site]
//   preset = inter-department         ; inter-department | intra-country |
//                                     ; cross-continent (each overridable)
//   max_cores = 48
//   disk_gb = 182
//   wan_mbps = 56
//   wan_efficiency = 0.10
//   io_mbps = 150
//
//   [bounds]
//   min_output_interval_min = 3
//   max_output_interval_min = 25
//
//   [model]
//   base_resolution_km = 24
//   nest_extent_deg = 9
//
//   [outages]                          ; optional failure injection
//   windows = 10-14, 30-31.5           ; wall hours
//
//   [faults]                           ; optional transport failure model
//   transfer_failure_rate = 0.15       ; P(one transfer attempt aborts)
//   retry_initial_seconds = 5          ; first backoff delay
//   retry_multiplier = 2.0             ; exponential growth per failure
//   retry_cap_seconds = 300            ; backoff ceiling
//   retry_jitter = 0.2                 ; +/- fraction drawn per retry
//   degrade_after = 5                  ; consecutive failures -> degraded
//
//   [serve]                            ; optional multi-client fan-out
//   viewers = 32                       ; 0 / absent section = paper setup
//   viewer_downlink_mbps = 100
//   cache_gb = 4
//   cache_frames = 0                   ; 0 = bytes-only bound
//   cache_policy = lru                 ; lru | stride-thin
//   catchup_fraction = 0.25            ; share of viewers replaying history
//   catchup_start_hours = 0            ; sim time catch-up viewers start at
//   catchup_join_wall_hours = 12       ; wall time catch-up viewers connect
//   rerender_workers = 2
//
//   [steering]                         ; optional control plane
//   latency_seconds = 0.3              ; command-channel WAN latency
//   poll_period_seconds = 60           ; external-inbox drain cadence
//   record_log = out/steering_log.jsonl ; save the applied event stream
//   replay_log = steering_session.jsonl ; apply a recorded/scripted stream
#pragma once

#include <string>

#include "core/framework.hpp"
#include "util/ini.hpp"

namespace adaptviz {

/// Table IV site preset by scenario name ("inter-department",
/// "intra-country", "cross-continent"); throws std::runtime_error on an
/// unknown name. Shared by the [site] section and the campaign grid's
/// `sites` axis.
SiteSpec site_preset(const std::string& name);

/// Decision-algorithm kind by scenario name ("optimization",
/// "greedy-threshold", "non-adaptive"); throws std::runtime_error on an
/// unknown name. Inverse of to_string(AlgorithmKind).
AlgorithmKind algorithm_from_name(const std::string& name);

/// Builds an ExperimentConfig from a parsed scenario document. Unknown
/// values raise std::runtime_error with the offending key.
ExperimentConfig scenario_from_ini(const IniDocument& doc);

/// Loads and parses a scenario file.
ExperimentConfig load_scenario(const std::string& path);

/// Writes an ExperimentResult as CSV files under `dir`:
/// <name>_samples.csv, <name>_visualization.csv, <name>_decisions.csv,
/// <name>_track.csv, <name>_summary.ini, and — when viewer clients were
/// configured — <name>_clients.csv with the per-client delivery series.
void write_result(const ExperimentResult& result, const std::string& dir);

}  // namespace adaptviz
