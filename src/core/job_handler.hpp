// Job handler: schedules and reschedules the simulation.
//
// "The job handler starts, stops and restarts the simulation process
// whenever the application configuration changes. ... The job handler then
// restarts WRF using WRF checkpointed data with the new application
// configuration and continues execution."
//
// Restarts are not free: the handler charges a fixed scheduler/startup
// overhead plus the time to write and read the checkpoint at the disk's
// I/O bandwidth — the cost the paper's framework pays for every adaptation,
// which is why decisions happen every 1.5 hours and not every minute.
#pragma once

#include <functional>
#include <memory>

#include "core/app_config.hpp"
#include "core/simulation_process.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "weather/model.hpp"

namespace adaptviz {

class JobHandler {
 public:
  struct Options {
    /// Queue/launch overhead per restart, on top of checkpoint I/O.
    WallSeconds restart_overhead = WallSeconds(90.0);
    /// When set, checkpoints round-trip through real NCL files in this
    /// directory (checkpoint_<n>.ncl), exactly as a production deployment
    /// would persist them; empty = in-memory hand-off.
    std::string checkpoint_dir;
  };

  JobHandler(EventQueue& queue, SimulationProcess& process,
             ApplicationConfiguration& shared_config, DiskModel& disk,
             ModelConfig model_config, ResolutionLadder ladder,
             Options options);

  /// Builds the initial model from the synthetic analysis and launches the
  /// simulation with the current shared configuration.
  void launch_initial();

  /// Application manager notification: the configuration object changed.
  /// Triggers a checkpoint/restart cycle when restart-worthy fields differ
  /// from the running configuration (CRITICAL toggles do not restart).
  void on_configuration_changed();

  /// Simulation notification: the storm crossed a Table III threshold.
  /// Updates the shared configuration's resolution and restarts.
  void on_resolution_signal(double new_resolution_km);

  /// Steering: do not refine below this resolution (0 = no floor). Signals
  /// requesting finer grids are clamped; an already-finer run is left
  /// untouched.
  void set_resolution_floor(double km) { resolution_floor_km_ = km; }
  [[nodiscard]] double resolution_floor_km() const {
    return resolution_floor_km_;
  }

  /// Steering: change the moving-nest footprint; takes effect through a
  /// checkpoint/restart like any other configuration change.
  void set_nest_extent(double extent_deg);

  [[nodiscard]] int restarts() const { return restarts_; }
  [[nodiscard]] bool restart_in_progress() const { return restarting_; }

  /// Launch/restart latches plus the steering-mutable knobs (resolution
  /// floor, nest extent via model_config). A restart in flight lives as a
  /// pending queue event whose closure reads these members at fire time.
  struct State {
    ApplicationConfiguration active{};
    ModelConfig model_config{};
    double resolution_floor_km = 0.0;
    bool launched = false;
    bool restarting = false;
    int restarts = 0;
  };
  [[nodiscard]] State snapshot() const {
    return State{active_,     model_config_, resolution_floor_km_,
                 launched_,   restarting_,   restarts_};
  }
  void restore(const State& s) {
    active_ = s.active;
    model_config_ = s.model_config;
    resolution_floor_km_ = s.resolution_floor_km;
    launched_ = s.launched;
    restarting_ = s.restarting;
    restarts_ = s.restarts;
  }

 private:
  void restart();

  EventQueue& queue_;
  SimulationProcess& process_;
  ApplicationConfiguration& config_;
  DiskModel& disk_;
  ModelConfig model_config_;
  ResolutionLadder ladder_;
  Options options_;

  /// Configuration the currently running simulation was launched with.
  ApplicationConfiguration active_;
  double resolution_floor_km_ = 0.0;
  bool launched_ = false;
  bool restarting_ = false;
  int restarts_ = 0;
  /// Scratch for file-based checkpoints (keeps the reload alive while the
  /// model is rebuilt from it).
  NclFile reloaded_;
};

}  // namespace adaptviz
