// Non-adaptive baseline.
//
// The paper argues from its cross-continent result that "a non-adaptive
// solution would result in stalling of the simulation much earlier than in
// the greedy algorithm". This algorithm is that solution: pick maximum
// processors and the most frequent output once, and never react to
// anything (it does not even set CRITICAL — the framework's safety net has
// to). It exists to quantify that sentence.
#pragma once

#include "core/decision.hpp"

namespace adaptviz {

class StaticAlgorithm final : public DecisionAlgorithm {
 public:
  /// Fixed configuration; zero values mean "max processors" / "minimum
  /// output interval" resolved on first invocation.
  StaticAlgorithm(int processors = 0, SimSeconds output_interval = SimSeconds(0.0))
      : processors_(processors), output_interval_(output_interval) {}

  [[nodiscard]] Decision decide(const DecisionInput& input) override;
  [[nodiscard]] std::string name() const override { return "non-adaptive"; }

 private:
  int processors_;
  SimSeconds output_interval_;
};

}  // namespace adaptviz
