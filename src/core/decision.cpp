#include "core/decision.hpp"

#include <algorithm>
#include <cmath>

namespace adaptviz {

SimSeconds quantize_output_interval(SimSeconds oi, SimSeconds ts,
                                    const DecisionBounds& bounds) {
  const double lo =
      std::max(bounds.min_output_interval.seconds(), ts.seconds());
  const double hi = std::max(lo, bounds.max_output_interval.seconds());
  double v = std::clamp(oi.seconds(), lo, hi);
  const double steps = std::max(1.0, std::round(v / ts.seconds()));
  v = steps * ts.seconds();
  // Rounding up may have pushed past the ceiling; prefer the largest
  // multiple of ts that still respects it (unless even one step exceeds it).
  if (v > hi && steps > 1.0) v -= ts.seconds();
  return SimSeconds(v);
}

}  // namespace adaptviz
