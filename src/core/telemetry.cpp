#include "core/telemetry.hpp"

#include <cstdio>
#include <stdexcept>
#include <variant>

namespace adaptviz {

const std::vector<TelemetryColumn>& telemetry_schema() {
  using S = TelemetrySample;
  using E = CalendarEpoch;
  using Cell = CsvTable::Cell;
  // Cell variant alternatives are part of the contract: doubles stay
  // doubles, counters and flags are `long` — exactly what the old
  // hand-written add_row produced, so the CSV bytes cannot change.
  static const std::vector<TelemetryColumn> schema = {
      {"wall_hours", "h",
       [](const S& s, const E&) -> Cell { return s.wall_time.as_hours(); }},
      {"sim_label", "",
       [](const S& s, const E& e) -> Cell { return e.label(s.sim_time); }},
      {"sim_hours", "h",
       [](const S& s, const E&) -> Cell { return s.sim_time.as_hours(); }},
      {"free_disk_percent", "%",
       [](const S& s, const E&) -> Cell { return s.free_disk_percent; }},
      {"processors", "",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.processors);
       }},
      {"output_interval_min", "min",
       [](const S& s, const E&) -> Cell {
         return s.output_interval.as_minutes();
       }},
      {"resolution_km", "km",
       [](const S& s, const E&) -> Cell { return s.resolution_km; }},
      {"min_pressure_hpa", "hPa",
       [](const S& s, const E&) -> Cell { return s.min_pressure_hpa; }},
      {"stalled", "flag",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.stalled);
       }},
      {"critical", "flag",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.critical);
       }},
      {"paused", "flag",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.paused);
       }},
      {"frames_written", "frames",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.frames_written);
       }},
      {"frames_sent", "frames",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.frames_sent);
       }},
      {"frames_visualized", "frames",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.frames_visualized);
       }},
      {"transfer_failures", "",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.transfer_failures);
       }},
      {"transfer_retries", "",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.transfer_retries);
       }},
      {"link_degraded", "flag",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.link_degraded);
       }},
      {"retry_backoff_s", "s",
       [](const S& s, const E&) -> Cell { return s.retry_backoff_seconds; }},
      {"frames_served", "frames",
       [](const S& s, const E&) -> Cell {
         return static_cast<long>(s.frames_served);
       }},
      {"serve_hit_percent", "%",
       [](const S& s, const E&) -> Cell { return s.serve_hit_percent; }},
      {"cache_mb", "MB",
       [](const S& s, const E&) -> Cell { return s.cache_bytes.mb(); }},
      {"codec_ratio", "x",
       [](const S& s, const E&) -> Cell { return s.codec_ratio; }},
  };
  return schema;
}

std::vector<std::string> telemetry_columns() {
  std::vector<std::string> out;
  out.reserve(telemetry_schema().size());
  for (const TelemetryColumn& c : telemetry_schema()) out.emplace_back(c.name);
  return out;
}

std::vector<CsvTable::Cell> telemetry_row(const TelemetrySample& s,
                                          const CalendarEpoch& epoch) {
  std::vector<CsvTable::Cell> row;
  row.reserve(telemetry_schema().size());
  for (const TelemetryColumn& c : telemetry_schema()) {
    row.push_back(c.cell(s, epoch));
  }
  return row;
}

std::string telemetry_summary(const TelemetrySample& s,
                              const CalendarEpoch& epoch) {
  std::string out;
  for (const TelemetryColumn& c : telemetry_schema()) {
    if (!out.empty()) out += ' ';
    out += c.name;
    out += '=';
    const CsvTable::Cell cell = c.cell(s, epoch);
    if (const auto* d = std::get_if<double>(&cell)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", *d);
      out += buf;
    } else if (const auto* l = std::get_if<long>(&cell)) {
      out += std::to_string(*l);
    } else {
      out += std::get<std::string>(cell);
    }
    out += c.unit;
  }
  return out;
}

TelemetryRecorder::TelemetryRecorder(EventQueue& queue, SampleFn fn,
                                     WallSeconds period)
    : queue_(queue), fn_(std::move(fn)), period_(period) {
  if (!fn_) throw std::invalid_argument("TelemetryRecorder: null sampler");
  if (period_.seconds() <= 0) {
    throw std::invalid_argument("TelemetryRecorder: period must be > 0");
  }
}

void TelemetryRecorder::start() {
  if (running_) return;
  running_ = true;
  tick(++epoch_);
}

void TelemetryRecorder::stop() { running_ = false; }

void TelemetryRecorder::tick(std::uint64_t epoch) {
  // A tick scheduled before stop() fires after a later start(): its epoch
  // is stale and it must die here, or two sampling chains run at once.
  if (!running_ || epoch != epoch_) return;
  samples_.push_back(fn_());
  queue_.schedule_after(
      period_, [this, epoch] { tick(epoch); }, "telemetry.tick");
}

}  // namespace adaptviz
