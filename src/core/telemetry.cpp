#include "core/telemetry.hpp"

#include <stdexcept>

namespace adaptviz {

TelemetryRecorder::TelemetryRecorder(EventQueue& queue, SampleFn fn,
                                     WallSeconds period)
    : queue_(queue), fn_(std::move(fn)), period_(period) {
  if (!fn_) throw std::invalid_argument("TelemetryRecorder: null sampler");
  if (period_.seconds() <= 0) {
    throw std::invalid_argument("TelemetryRecorder: period must be > 0");
  }
}

void TelemetryRecorder::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void TelemetryRecorder::stop() { running_ = false; }

void TelemetryRecorder::tick() {
  if (!running_) return;
  samples_.push_back(fn_());
  queue_.schedule_after(
      period_, [this] { tick(); }, "telemetry.tick");
}

}  // namespace adaptviz
