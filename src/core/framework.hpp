// AdaptiveFramework — the paper's Figure 2 wired together.
//
// Owns and connects every component: the ground-truth cluster + profiled
// performance model, the disk and WAN models, the weather simulation
// process, frame sender/receiver daemons, the remote visualization process,
// the application manager with one of the two decision algorithms, and the
// job handler — all on one discrete-event queue. `run()` executes an entire
// experiment (a 2.5-day Aila tracking campaign) and returns the telemetry
// the paper's figures are drawn from.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/adversary.hpp"
#include "core/application_manager.hpp"
#include "core/greedy_threshold.hpp"
#include "obs/obs.hpp"
#include "core/job_handler.hpp"
#include "core/lp_optimizer.hpp"
#include "core/static_algorithm.hpp"
#include "core/simulation_process.hpp"
#include "core/telemetry.hpp"
#include "serve/edge_tree.hpp"
#include "serve/session_manager.hpp"
#include "steering/control_plane.hpp"
#include "steering/steering.hpp"
#include "transport/receiver.hpp"
#include "transport/sender.hpp"
#include "vis/vis_process.hpp"
#include "weather/model.hpp"

namespace adaptviz {

enum class AlgorithmKind { kGreedyThreshold, kOptimization, kStatic };

const char* to_string(AlgorithmKind k);

/// Multi-client serving at the visualization site (src/serve): an empty
/// viewer list disables the subsystem and reproduces the paper's
/// single-scientist setup exactly.
struct ServeOptions {
  ViewerSessionManager::Options session{};
  std::vector<ViewerConfig> viewers;
  /// Edge-cache distribution tree below the visualization site ([tree]
  /// section): regional caches + leaf session managers fanning each
  /// visualized frame out to viewers_per_leaf × leaf_count modeled
  /// viewers. Empty tiers (the default) disable it. Independent of
  /// `viewers` — the full-fidelity single-site sessions and the modeled
  /// tree can run together or alone.
  TreeSpec tree{};

  [[nodiscard]] bool enabled() const { return !viewers.empty(); }
};

/// Transport failure injection and the sender's retry policy. The default
/// (rate 0) reproduces the seed's always-succeeds WAN exactly.
struct FaultOptions {
  /// Probability in [0, 1] that one transfer attempt aborts mid-flight.
  double transfer_failure_rate = 0.0;
  FrameSender::RetryPolicy retry{};
};

/// The run-side half of the control plane (steering/control_plane.hpp).
/// All fields default to "no steering" and reproduce the seed bitwise.
struct SteeringOptions {
  /// Scientist stand-in consulted at the visualization site per visualized
  /// frame; commands travel back over the control plane. Mutually
  /// exclusive with `replay` (a replayed log already contains whatever a
  /// policy decided — running both would double-steer the run).
  SteeringPolicy policy;
  /// Command-channel latency. Negative (the default) inherits the
  /// deprecated top-level `steering_latency` field.
  WallSeconds latency{-1.0};
  /// How often (virtual time) the run drains its inbox on an external
  /// control plane.
  WallSeconds poll_period{60.0};
  /// External multi-run control plane (a RegistrationServer). Non-owning;
  /// must outlive the run. The framework registers under config.name at
  /// construction, polls the inbox every `poll_period`, publishes
  /// per-frame observations, and deregisters when run() returns.
  ControlPlane* control_plane = nullptr;
  /// Scripted/replayed events, applied at exactly their `wall` times.
  std::vector<SteeringEvent> replay;
  /// Load this steering_log.jsonl into `replay` at construction.
  std::string replay_log_path;
  /// Save the applied event stream here when run() returns; replaying the
  /// saved log reproduces this run bit for bit.
  std::string record_log_path;
};

struct ExperimentConfig {
  std::string name = "inter-department";
  SiteSpec site = inter_department_site();
  AlgorithmKind algorithm = AlgorithmKind::kOptimization;

  ModelConfig model{};
  /// Simulated window to cover (Aila: 22-May 18:00 + 60 h -> 25-May 06:00).
  SimSeconds sim_window = SimSeconds::hours(60.0);
  /// Wall-clock cutoff: a stalled greedy run never finishes on its own.
  WallSeconds max_wall = WallSeconds::hours(48.0);

  WallSeconds decision_period = WallSeconds::hours(1.5);
  WallSeconds sample_period = WallSeconds::minutes(10.0);
  DecisionBounds bounds{};
  GreedyThresholds greedy{};
  OptimizerConfig optimizer{};
  JobHandler::Options job{};
  VisualizationProcess::Options vis{};
  ApplicationManager::Options manager{};

  /// Attach real field payloads to frames (examples render them).
  bool keep_payloads = false;
  /// Lossless frame codec (`[codec]` section; off by default so every
  /// existing golden stands). When enabled the simulation site encodes each
  /// frame's real compute fields, frames carry encoded bytes through disk,
  /// WAN, and cache accounting, and the decision layer plans with the
  /// observed ratio.
  CodecOptions codec{};
  /// Cap on the per-run telemetry/vis/track/steering series lengths in
  /// ExperimentResult; series longer than this are stride-thinned (keeping
  /// first and last points). 0 = unlimited.
  std::size_t max_series_points = 0;
  /// Visualization-site frame cache + viewer fan-out.
  ServeOptions serve{};
  /// Parallel render slots at the visualization site (future work:
  /// "parallelize the visualization process").
  int vis_workers = 1;
  /// Failure injection: scheduled WAN outage windows (sorted,
  /// non-overlapping). Transfers pause across them; the bandwidth
  /// estimator and the decision algorithms must ride them out.
  std::vector<LinkOutage> wan_outages;
  /// Failure injection: per-transfer abort probability + retry policy.
  FaultOptions faults{};
  /// Adversarial environment actions applied at decision boundaries
  /// ([adversary] section; see core/adversary.hpp). An explored branch
  /// replayed through this field reproduces the branch bit for bit.
  AdversaryPlan adversary;
  /// Worker pool for render fan-out at the visualization site. Non-owning;
  /// must outlive the run. Null uses ThreadPool::shared(). All ordering
  /// decisions happen on the event loop, so results are bitwise identical
  /// for any pool size — tests/test_explore.cpp asserts it.
  ThreadPool* pool = nullptr;
  std::uint64_t seed = 42;

  /// The control plane (registration, observers, scripted/replayed
  /// steering). `steering.policy` / `steering.latency` supersede the two
  /// deprecated fields below.
  SteeringOptions steering{};

  /// Deprecated: use steering.policy / steering.latency. Still honoured
  /// (normalized into `steering` at construction; the golden test in
  /// tests/test_steering.cpp asserts both spellings run byte-identically).
  SteeringPolicy steering_policy;
  WallSeconds steering_latency{0.3};

  /// Observability: when true the framework owns a metrics registry +
  /// stage tracer, installs them on its run context, and returns the
  /// snapshot in ExperimentResult. Off by default: instrumentation is a
  /// no-op and the run is bitwise identical either way (bench_observability
  /// asserts it).
  bool observability = false;
  obs::ObsOptions obs{};

  /// Per-run logging overrides, threaded through the same run context as
  /// observability. An unset level inherits the process-wide
  /// set_log_level(); a null sink writes to stderr. The campaign runner
  /// sets these so K concurrent runs never fight over one global logger.
  /// The sink is non-owning and must outlive the run.
  struct RunLogOptions {
    bool has_level = false;
    LogLevel level = LogLevel::kWarn;
    LogSink* sink = nullptr;

    void set_level(LogLevel l) {
      level = l;
      has_level = true;
    }
  };
  RunLogOptions log{};
};

struct ExperimentSummary {
  bool completed = false;      // simulation covered the full window
  WallSeconds wall_elapsed{};  // when the run ended (drained or cutoff)
  /// Wall time at which the *simulation* finished (Fig 5's endpoint); equal
  /// to wall_elapsed unless transfers kept draining afterwards. Unset when
  /// the simulation never completed.
  WallSeconds sim_finished_wall{};
  SimSeconds sim_reached{};
  Bytes peak_disk_used{};
  double min_free_disk_percent = 100.0;
  WallSeconds total_stall_time{};
  std::int64_t frames_written = 0;
  std::int64_t frames_sent = 0;
  std::int64_t frames_visualized = 0;
  // Transport reliability (zero on a failure-free link).
  std::int64_t transfer_failures = 0;
  std::int64_t transfer_retries = 0;
  int restarts = 0;
  int decision_count = 0;

  // Serving subsystem (zero when no viewers are configured).
  int viewers = 0;
  std::int64_t frames_served = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
  std::int64_t rerenders = 0;
  Bytes peak_cache_bytes{};

  // Frame codec (identity values when [codec] is off).
  double codec_mean_ratio = 1.0;  // cumulative raw/encoded over the run
  Bytes codec_bytes_saved{};      // modeled bytes kept off disk and wire

  // Control plane (zero when no steering/observers are configured).
  std::int64_t steering_events = 0;  // events applied on the run's stream
  std::int64_t steer_renders = 0;    // view-steer re-renders performed
  std::int64_t steer_dedup = 0;      // renders saved by (frame,view) dedup
  int observers_peak = 0;            // most sessions attached at once

  // Edge-cache distribution tree (zero when [tree] is absent).
  int tree_tiers = 0;
  int tree_leaves = 0;
  std::int64_t tree_viewers = 0;           // leaves × viewers_per_leaf
  std::int64_t tree_frames_delivered = 0;  // viewer frames (fanned out)
  Bytes tree_origin_wan_bytes{};           // tier-0 uplink traffic
  std::int64_t tree_fill_retries = 0;      // all tiers
  std::int64_t tree_degraded_events = 0;   // all tiers
};

struct SteeringRecord {
  WallSeconds delivered_at{};
  SteeringCommand command;
  /// The full control-plane event the command arrived as (event.wall ==
  /// delivered_at; event.client names the sender, "" for in-run policies).
  SteeringEvent event{};
};

/// One client's delivery series plus its terminal stats (CSV + figures).
struct ClientSeries {
  std::string name;
  ViewerMode mode{};
  ViewerStats stats{};
  std::vector<DeliveryRecord> records;
};

struct ExperimentResult {
  ExperimentConfig config;
  ExperimentSummary summary;
  std::vector<TelemetrySample> samples;
  std::vector<VisRecord> vis_records;
  std::vector<DecisionRecord> decisions;
  std::vector<TrackPoint> track;
  std::vector<SteeringRecord> steering;
  std::vector<ClientSeries> clients;
  /// Populated when config.observability is set; empty otherwise.
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceEvent> trace;
};

/// Complete checkpoint of one experiment at an event boundary: every
/// stateful layer's State value composed with the pending event queue.
/// Copyable — the heavy weather-solver fields and codec history ride as
/// shared immutable copies — so the scenario explorer can hold one per
/// open tree node. Contract:
///
///  * capture only between events (AdaptiveFramework::snapshot() is only
///    callable from the stepwise driving loop, never from inside a
///    callback);
///  * restore only onto the SAME AdaptiveFramework instance the snapshot
///    was taken from: pending events hold closures over the framework's
///    long-lived components, which restore() rewinds in place.
struct ExperimentState {
  EventQueue::State queue;
  GroundTruthMachine::State machine;
  DiskModel::State disk;
  NetworkLink::State link;
  FrameCatalog::State catalog;
  BandwidthEstimator::State estimator;
  ApplicationConfiguration app_config{};
  SimulationProcess::State process;
  JobHandler::State job_handler;
  ApplicationManager::State manager;
  FrameSender::State sender;
  FrameReceiver::State receiver;
  VisualizationProcess::State vis;
  TelemetryRecorder::State telemetry;
  LocalControlPlane::State control;
  /// Absent when the serving subsystem had not been created yet (restore
  /// then tears a later-created manager back down).
  std::optional<ViewerSessionManager::State> serving;
  std::vector<SteeringRecord> steering_log;
  std::vector<SteeringEvent> steering_events;
  std::map<std::string, KnobProposal> proposals;
  int observers_peak = 0;
  bool run_started = false;
  bool sim_finish_seen = false;
  WallSeconds sim_finished_wall{0.0};
  std::size_t adversary_applied = 0;
  /// Scalar instruments at capture time (empty when observability is
  /// off). restore() rewinds counters and gauges; histograms are not
  /// rewound (MetricsRegistry::restore_scalars documents why).
  obs::MetricsSnapshot metrics;
};

class AdaptiveFramework {
 public:
  explicit AdaptiveFramework(ExperimentConfig config);
  ~AdaptiveFramework();

  AdaptiveFramework(const AdaptiveFramework&) = delete;
  AdaptiveFramework& operator=(const AdaptiveFramework&) = delete;

  /// Runs the experiment to completion (simulation finished and all frames
  /// visualized) or to the wall cutoff. The framework's run context is
  /// (re-)installed on the calling thread for the duration, so run() may
  /// legally execute on a different thread than the constructor — e.g. as
  /// a campaign pool task.
  ExperimentResult run();

  // --- Stepwise driving (run() delegates to these) ---
  //
  // The explorer's interface: start, pump events one at a time, snapshot
  // or restore at any boundary, and build the result when done. Must
  // execute on the thread that constructed the framework (whose run
  // context is still installed); run() itself re-installs the context and
  // so stays safe to call from a campaign pool task.

  /// Launches the initial job, the manager, the sender and telemetry.
  /// Throws std::logic_error when called twice on the same timeline
  /// (restoring a pre-start snapshot re-arms it).
  void start_run();
  /// Executes one event. Returns false when the run is over: queue empty,
  /// wall cutoff reached, or simulation finished with the pipeline
  /// drained.
  bool step_once();
  /// Builds the result from the current state. The run must not be
  /// stepped further afterwards unless restore() rewinds it first.
  ExperimentResult finish_run();

  /// Whole-experiment checkpoint at the current event boundary. Throws
  /// std::logic_error when a configured subsystem has no snapshot support
  /// (the [tree] edge cache, an external control plane).
  [[nodiscard]] ExperimentState snapshot() const;
  /// Rewinds this instance to `s`. Only valid with a state captured from
  /// this same instance.
  void restore(const ExperimentState& s);

  /// Replaces the adversary plan mid-run (the explorer extends a branch
  /// right after a restore) and immediately applies any action already
  /// due at the current decision count. The already-applied prefix must
  /// be unchanged; throws std::invalid_argument otherwise.
  void set_adversary_plan(AdversaryPlan plan);
  [[nodiscard]] const AdversaryPlan& adversary_plan() const {
    return config_.adversary;
  }
  /// Decisions the application manager has made so far (adversary actions
  /// key off this count).
  [[nodiscard]] int decisions_made() const;

  /// Component access for tests and custom drivers.
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const DiskModel& disk() const { return disk_; }
  [[nodiscard]] const SimulationProcess& process() const { return *process_; }
  [[nodiscard]] const VisualizationProcess& vis() const { return *vis_; }
  [[nodiscard]] const ApplicationManager& manager() const { return *manager_; }
  [[nodiscard]] const FrameSender& sender() const { return *sender_; }
  [[nodiscard]] const FrameReceiver& receiver() const { return *receiver_; }
  [[nodiscard]] const ApplicationConfiguration& configuration() const {
    return app_config_;
  }
  [[nodiscard]] const PerformanceModel& performance_model() const {
    return *perf_;
  }
  /// Null when no viewers are configured.
  [[nodiscard]] const ViewerSessionManager* serving() const {
    return serving_.get();
  }
  /// Null when no [tree] is configured.
  [[nodiscard]] const EdgeTree* tree() const { return tree_.get(); }
  /// Null unless config.observability is set.
  [[nodiscard]] obs::Observability* observability() { return obs_.get(); }

  /// The run's applied steering-event stream (what record_log_path saves).
  [[nodiscard]] const std::vector<SteeringEvent>& steering_events() const {
    return steering_events_;
  }
  /// The run's in-process control plane (always present). Tests and custom
  /// drivers steer through it directly.
  [[nodiscard]] LocalControlPlane& control_plane() { return *control_; }

 private:
  [[nodiscard]] TelemetrySample sample_now();
  [[nodiscard]] ApplicationStatus status_now();
  [[nodiscard]] bool drained() const;
  void apply_steering(const SteeringCommand& command);
  void apply_event(const SteeringEvent& event);
  void ensure_serving();
  void recompute_observer_digest();
  void schedule_control_poll();
  /// Applies every not-yet-applied adversary action whose decision index
  /// has passed. Both the stepwise loop and set_adversary_plan() run
  /// through here, so an explored branch and its plain replay mutate the
  /// environment at the same virtual instants.
  void apply_due_adversary_actions();

  ExperimentConfig config_;
  EventQueue queue_;

  GroundTruthMachine machine_;
  DiskModel disk_;
  NetworkLink link_;
  FrameCatalog catalog_;
  BandwidthEstimator estimator_;

  std::unique_ptr<PerformanceModel> perf_;
  ApplicationConfiguration app_config_;

  std::unique_ptr<DecisionAlgorithm> algorithm_;
  std::unique_ptr<VisualizationProcess> vis_;
  std::unique_ptr<ViewerSessionManager> serving_;
  std::unique_ptr<EdgeTree> tree_;
  std::unique_ptr<FrameReceiver> receiver_;
  std::unique_ptr<FrameSender> sender_;
  std::unique_ptr<SimulationProcess> process_;
  std::unique_ptr<JobHandler> job_handler_;
  std::unique_ptr<ApplicationManager> manager_;
  std::unique_ptr<TelemetryRecorder> telemetry_;
  std::unique_ptr<LocalControlPlane> control_;
  std::vector<SteeringRecord> steering_log_;     // commands only (compat)
  std::vector<SteeringEvent> steering_events_;   // every applied event
  std::map<std::string, KnobProposal> proposals_;  // live, by client
  ControlPlane::RunId server_run_id_ = -1;
  int observers_peak_ = 0;

  // Stepwise-run bookkeeping (part of ExperimentState).
  bool run_started_ = false;
  bool sim_finish_seen_ = false;
  WallSeconds sim_finished_wall_{0.0};
  std::size_t adversary_applied_ = 0;

  // The experiment's run context (obs bundle + log overrides). Declared
  // last and in this order: the scope uninstalls before the context and
  // bundle it points at are destroyed.
  std::unique_ptr<obs::Observability> obs_;
  RunContext ctx_;
  std::unique_ptr<ScopedRunContext> ctx_scope_;
};

/// Convenience wrapper: build, run, return.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace adaptviz
