#include "core/simulation_process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace adaptviz {

SimulationProcess::SimulationProcess(
    EventQueue& queue, GroundTruthMachine& machine, DiskModel& disk,
    FrameCatalog& catalog, FrameSender& sender,
    const ApplicationConfiguration& shared_config, Options options,
    Callbacks callbacks)
    : queue_(queue),
      machine_(machine),
      disk_(disk),
      catalog_(catalog),
      sender_(sender),
      config_(shared_config),
      options_(options),
      callbacks_(std::move(callbacks)) {
  if (options_.stall_poll.seconds() <= 0) {
    throw std::invalid_argument("SimulationProcess: stall_poll must be > 0");
  }
  if (options_.codec.enabled) {
    codec_ = std::make_unique<FrameFieldCodec>(options_.codec);
  }
}

SimSeconds SimulationProcess::sim_time() const {
  return model_ ? model_->sim_time() : SimSeconds(0.0);
}

WallSeconds SimulationProcess::total_stall_time() const {
  WallSeconds total = stall_time_;
  if (stalled_) total += queue_.now() - stall_started_;
  return total;
}

void SimulationProcess::start(std::unique_ptr<WeatherModel> model) {
  if (running_) {
    throw std::logic_error("SimulationProcess: already running");
  }
  if (!model) throw std::invalid_argument("SimulationProcess: null model");
  model_ = std::move(model);
  running_ = true;
  stalled_ = false;
  finished_ = false;
  pending_encoded_.reset();
  launch_processors_ = config_.processors;
  launch_output_interval_ = config_.output_interval;
  last_signaled_resolution_ = model_->recommended_resolution_km();
  next_output_due_ = model_->sim_time() + launch_output_interval_;
  ADAPTVIZ_LOG_INFO("simulation",
                    "started: %d procs, OI=%.1f sim-min, res=%.1f km",
                    config_.processors,
                    config_.output_interval.as_minutes(),
                    model_->modeled_resolution_km());
  schedule_step();
}

void SimulationProcess::request_stop(std::function<void(NclFile)> stopped) {
  if (!stopped) throw std::invalid_argument("request_stop: null callback");
  if (stop_pending()) {
    throw std::logic_error("SimulationProcess: stop already pending");
  }
  stop_callback_ = std::move(stopped);
  if (!running_ || finished_) {
    deliver_stop();
    return;
  }
  // A step in flight completes first; an idle/stalled process is collected
  // at its next poll. Nothing to do here — the loops check stop_pending().
}

void SimulationProcess::deliver_stop() {
  running_ = false;
  auto cb = std::move(stop_callback_);
  stop_callback_ = nullptr;
  if (!model_) {
    throw std::logic_error("SimulationProcess: stop without a model");
  }
  ADAPTVIZ_LOG_INFO("simulation", "stopped at sim %.1f h (checkpointing)",
                    model_->sim_time().as_hours());
  cb(model_->checkpoint());
}

void SimulationProcess::schedule_step() {
  if (stop_pending()) {
    deliver_stop();
    return;
  }
  if (finished_ || !running_) return;
  if (config_.critical || config_.paused) {
    enter_stall(config_.critical ? "CRITICAL flag set" : "paused by steering");
    return;
  }
  step_in_flight_ = true;
  const WallSeconds cost = machine_.step_time(
      std::max(1, launch_processors_), model_->work_units());
  queue_.schedule_after(
      cost, [this] { complete_step(); }, "simulation.step");
}

void SimulationProcess::complete_step() {
  step_in_flight_ = false;
  model_->step();
  ++steps_;

  if (model_->resolution_change_pending()) {
    const double rec = model_->recommended_resolution_km();
    if (rec < last_signaled_resolution_ - 1e-9 &&
        callbacks_.on_resolution_signal) {
      last_signaled_resolution_ = rec;
      ADAPTVIZ_LOG_INFO("simulation",
                        "pressure %.1f hPa: signalling resolution %.1f km",
                        model_->min_pressure_hpa(), rec);
      callbacks_.on_resolution_signal(rec);
    }
  }

  if (model_->sim_time() >= next_output_due_ - SimSeconds(1e-6)) {
    try_write_frame();
    return;
  }
  finish_or_continue();
}

Bytes SimulationProcess::encode_pending_frame(Bytes raw) {
  // The codec runs on the real compute-grid fields; the measured ratio then
  // scales the *modeled* frame bytes (frame_bytes() models the full 18-var,
  // 27-level WRF output the h/u/v fields stand in for).
  std::vector<FieldView> fields;
  const DomainState& p = model_->parent_state();
  fields.push_back(FieldView{p.h.data().data(), p.h.nx(), p.h.ny()});
  fields.push_back(FieldView{p.u.data().data(), p.u.nx(), p.u.ny()});
  fields.push_back(FieldView{p.v.data().data(), p.v.nx(), p.v.ny()});
  if (model_->nest_active()) {
    const DomainState& n = model_->nest()->state();
    fields.push_back(FieldView{n.h.data().data(), n.h.nx(), n.h.ny()});
    fields.push_back(FieldView{n.u.data().data(), n.u.nx(), n.u.ny()});
    fields.push_back(FieldView{n.v.data().data(), n.v.nx(), n.v.ny()});
  }
  const CodecFrameReport report = codec_->encode_frame_fields(fields);
  const double ratio = report.ratio();
  const Bytes encoded(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(raw.as_double() / ratio))));
  codec_saved_ += raw - encoded;
  obs::count("codec.frames");
  obs::count("codec.bytes_raw", raw.count());
  obs::count("codec.bytes_encoded", encoded.count());
  obs::count("codec.bytes_saved", (raw - encoded).count());
  obs::observe("codec.ratio", ratio);
  obs::observe("codec.encode_ms", report.encode_seconds * 1e3);
  obs::observe("codec.decode_ms", report.decode_seconds * 1e3);
  return encoded;
}

void SimulationProcess::try_write_frame() {
  const Bytes raw = model_->frame_bytes();
  Bytes size = raw;
  if (codec_) {
    // Encode exactly once per output: a disk-full stall retries this frame
    // without re-rotating the codec's history.
    if (!pending_encoded_.has_value()) {
      pending_encoded_ = encode_pending_frame(raw);
    }
    size = *pending_encoded_;
  }
  if (!disk_.allocate(size)) {
    enter_stall("disk full");
    return;
  }
  const WallSeconds tio = disk_.write_time(size);
  queue_.schedule_after(
      tio,
      [this, size, raw] {
        pending_encoded_.reset();
        Frame frame;
        frame.sequence = next_sequence_++;
        frame.sim_time = model_->sim_time();
        frame.resolution_km = model_->modeled_resolution_km();
        frame.min_pressure_hpa = model_->min_pressure_hpa();
        frame.nest_active = model_->nest_active();
        frame.size = size;
        if (codec_) frame.raw_size = raw;
        if (options_.keep_payloads) {
          frame.payload = std::make_shared<NclFile>(model_->make_frame());
        }
        catalog_.push(std::move(frame));
        sender_.kick();
        ++frames_;
        next_output_due_ += launch_output_interval_;
        finish_or_continue();
      },
      "simulation.write_frame");
}

void SimulationProcess::enter_stall(const char* reason) {
  if (!stalled_) {
    stalled_ = true;
    stall_started_ = queue_.now();
    ADAPTVIZ_LOG_WARN("simulation", "stalled at wall %s: %s",
                      hh_mm(queue_.now()).c_str(), reason);
  }
  queue_.schedule_after(
      options_.stall_poll, [this] { stall_check(); }, "simulation.stall");
}

void SimulationProcess::stall_check() {
  if (!stalled_) return;
  if (stop_pending()) {
    stall_time_ += queue_.now() - stall_started_;
    stalled_ = false;
    deliver_stop();
    return;
  }
  if (config_.critical || config_.paused) {
    queue_.schedule_after(
        options_.stall_poll, [this] { stall_check(); }, "simulation.stall");
    return;
  }
  // Flag cleared: leave the stall and resume where we left off.
  stall_time_ += queue_.now() - stall_started_;
  stalled_ = false;
  ADAPTVIZ_LOG_INFO("simulation", "resuming after %.1f min stall",
                    (queue_.now() - stall_started_).seconds() / 60.0);
  if (model_->sim_time() >= next_output_due_ - SimSeconds(1e-6)) {
    try_write_frame();
  } else {
    schedule_step();
  }
}

void SimulationProcess::finish_or_continue() {
  if (model_->sim_time() >= options_.end_time) {
    finished_ = true;
    running_ = false;
    ADAPTVIZ_LOG_INFO("simulation", "finished at wall %s",
                      hh_mm(queue_.now()).c_str());
    if (stop_pending()) {
      // A restart raced completion; honour the stop contract anyway.
      auto cb = std::move(stop_callback_);
      stop_callback_ = nullptr;
      cb(model_->checkpoint());
      return;
    }
    if (callbacks_.on_finished) callbacks_.on_finished();
    return;
  }
  schedule_step();
}

SimulationProcess::State SimulationProcess::snapshot() const {
  State s;
  if (model_) s.model = std::make_shared<const WeatherModel>(*model_);
  if (codec_) s.codec = std::make_shared<const FrameFieldCodec>(*codec_);
  s.codec_saved = codec_saved_;
  s.pending_encoded = pending_encoded_;
  s.running = running_;
  s.stalled = stalled_;
  s.finished = finished_;
  s.step_in_flight = step_in_flight_;
  s.stop_callback = stop_callback_;
  s.launch_processors = launch_processors_;
  s.launch_output_interval = launch_output_interval_;
  s.next_output_due = next_output_due_;
  s.next_sequence = next_sequence_;
  s.last_signaled_resolution = last_signaled_resolution_;
  s.steps = steps_;
  s.frames = frames_;
  s.stall_time = stall_time_;
  s.stall_started = stall_started_;
  return s;
}

void SimulationProcess::restore(const State& s) {
  model_ = s.model ? std::make_unique<WeatherModel>(*s.model) : nullptr;
  codec_ = s.codec ? std::make_unique<FrameFieldCodec>(*s.codec) : nullptr;
  codec_saved_ = s.codec_saved;
  pending_encoded_ = s.pending_encoded;
  running_ = s.running;
  stalled_ = s.stalled;
  finished_ = s.finished;
  step_in_flight_ = s.step_in_flight;
  stop_callback_ = s.stop_callback;
  launch_processors_ = s.launch_processors;
  launch_output_interval_ = s.launch_output_interval;
  next_output_due_ = s.next_output_due;
  next_sequence_ = s.next_sequence;
  last_signaled_resolution_ = s.last_signaled_resolution;
  steps_ = s.steps;
  frames_ = s.frames;
  stall_time_ = s.stall_time;
  stall_started_ = s.stall_started;
}

}  // namespace adaptviz
