#include "core/static_algorithm.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace adaptviz {

Decision StaticAlgorithm::decide(const DecisionInput& in) {
  Decision d;
  d.processors = processors_ > 0 ? processors_ : in.max_processors;
  d.processors = std::clamp(d.processors, in.min_processors,
                            in.max_processors);
  const SimSeconds oi = output_interval_.seconds() > 0
                            ? output_interval_
                            : in.bounds.min_output_interval;
  d.output_interval =
      quantize_output_interval(oi, in.integration_step, in.bounds);
  d.critical = false;  // it never reacts; the manager's safety net may
  d.note = format("non-adaptive: %d procs, OI %.1f sim-min (fixed)",
                  d.processors, d.output_interval.as_minutes());
  return d;
}

}  // namespace adaptviz
