#include "core/scenario.hpp"

#include <filesystem>
#include <stdexcept>

#include "util/calendar.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace adaptviz {

SiteSpec site_preset(const std::string& name) {
  if (name == "inter-department") return inter_department_site();
  if (name == "intra-country") return intra_country_site();
  if (name == "cross-continent") return cross_continent_site();
  throw std::runtime_error("scenario: unknown site preset '" + name + "'");
}

AlgorithmKind algorithm_from_name(const std::string& name) {
  if (name == "optimization") return AlgorithmKind::kOptimization;
  if (name == "greedy-threshold") return AlgorithmKind::kGreedyThreshold;
  if (name == "non-adaptive") return AlgorithmKind::kStatic;
  throw std::runtime_error("scenario: unknown algorithm '" + name + "'");
}

namespace {

std::vector<LinkOutage> parse_outages(const std::string& spec) {
  std::vector<LinkOutage> out;
  for (const std::string& window : split(spec, ',')) {
    const std::string w = trim(window);
    if (w.empty()) continue;
    const auto parts = split(w, '-');
    if (parts.size() != 2) {
      throw std::runtime_error("scenario: outage window '" + w +
                               "' must be start-end (hours)");
    }
    try {
      const double start = std::stod(trim(parts[0]));
      const double end = std::stod(trim(parts[1]));
      out.push_back(LinkOutage{WallSeconds::hours(start),
                               WallSeconds::hours(end)});
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("scenario: malformed outage window '" + w +
                               "'");
    }
  }
  return out;
}

}  // namespace

ExperimentConfig scenario_from_ini(const IniDocument& doc) {
  ExperimentConfig cfg;

  // [experiment]
  cfg.name = doc.get_or("experiment", "name", "scenario");
  cfg.algorithm =
      algorithm_from_name(
          doc.get_or("experiment", "algorithm", "optimization"));
  if (auto v = doc.get_double("experiment", "sim_window_hours")) {
    cfg.sim_window = SimSeconds::hours(*v);
  }
  if (auto v = doc.get_double("experiment", "max_wall_hours")) {
    cfg.max_wall = WallSeconds::hours(*v);
  }
  if (auto v = doc.get_double("experiment", "decision_period_hours")) {
    cfg.decision_period = WallSeconds::hours(*v);
  }
  if (auto v = doc.get_double("experiment", "compute_scale")) {
    cfg.model.compute_scale = *v;
  }
  if (auto v = doc.get_int("experiment", "seed")) {
    cfg.seed = static_cast<std::uint64_t>(*v);
  }
  if (auto v = doc.get_int("experiment", "vis_workers")) {
    cfg.vis_workers = static_cast<int>(*v);
  }
  if (auto v = doc.get_bool("experiment", "keep_payloads")) {
    cfg.keep_payloads = *v;
  }
  if (auto v = doc.get_int("experiment", "max_series_points")) {
    if (*v < 0) {
      throw std::runtime_error(
          "scenario: experiment.max_series_points must be >= 0");
    }
    cfg.max_series_points = static_cast<std::size_t>(*v);
  }

  // [site]
  cfg.site = site_preset(doc.get_or("site", "preset", "inter-department"));
  if (auto v = doc.get_int("site", "max_cores")) {
    cfg.site.machine.max_cores = static_cast<int>(*v);
  }
  if (auto v = doc.get_int("site", "min_cores")) {
    cfg.site.machine.min_cores = static_cast<int>(*v);
  }
  if (auto v = doc.get_double("site", "disk_gb")) {
    cfg.site.disk_capacity = Bytes::gigabytes(*v);
  }
  if (auto v = doc.get_double("site", "wan_mbps")) {
    cfg.site.wan_nominal = Bandwidth::mbps(*v);
  }
  if (auto v = doc.get_double("site", "wan_efficiency")) {
    cfg.site.wan_efficiency = *v;
  }
  if (auto v = doc.get_double("site", "io_mbps")) {
    cfg.site.io_bandwidth = Bandwidth::megabytes_per_second(*v);
  }

  // [bounds]
  if (auto v = doc.get_double("bounds", "min_output_interval_min")) {
    cfg.bounds.min_output_interval = SimSeconds::minutes(*v);
  }
  if (auto v = doc.get_double("bounds", "max_output_interval_min")) {
    cfg.bounds.max_output_interval = SimSeconds::minutes(*v);
  }

  // [model] — "extend our framework for a larger grid": the domain box and
  // base resolution are fully configurable.
  if (auto v = doc.get_double("model", "base_resolution_km")) {
    cfg.model.base_resolution_km = *v;
  }
  if (auto v = doc.get_double("model", "nest_extent_deg")) {
    cfg.model.nest_extent_deg = *v;
  }
  if (auto v = doc.get_double("model", "lon0")) cfg.model.lon0 = *v;
  if (auto v = doc.get_double("model", "lat0")) cfg.model.lat0 = *v;
  if (auto v = doc.get_double("model", "extent_lon_deg")) {
    cfg.model.extent_lon_deg = *v;
  }
  if (auto v = doc.get_double("model", "extent_lat_deg")) {
    cfg.model.extent_lat_deg = *v;
  }

  // [files] — optional on-disk protocol artifacts.
  if (auto v = doc.get("files", "config_file")) {
    cfg.manager.config_file_path = *v;
  }
  if (auto v = doc.get("files", "checkpoint_dir")) {
    cfg.job.checkpoint_dir = *v;
  }

  // [outages]
  if (auto v = doc.get("outages", "windows")) {
    cfg.wan_outages = parse_outages(*v);
  }

  // [faults] — transport failure injection + the sender's retry policy.
  if (doc.has_section("faults")) {
    if (auto v = doc.get_double("faults", "transfer_failure_rate")) {
      if (*v < 0.0 || *v > 1.0) {
        throw std::runtime_error(
            "scenario: faults.transfer_failure_rate must be in [0, 1]");
      }
      cfg.faults.transfer_failure_rate = *v;
    }
    if (auto v = doc.get_double("faults", "retry_initial_seconds")) {
      cfg.faults.retry.initial_backoff = WallSeconds(*v);
    }
    if (auto v = doc.get_double("faults", "retry_multiplier")) {
      cfg.faults.retry.multiplier = *v;
    }
    if (auto v = doc.get_double("faults", "retry_cap_seconds")) {
      cfg.faults.retry.max_backoff = WallSeconds(*v);
    }
    if (auto v = doc.get_double("faults", "retry_jitter")) {
      cfg.faults.retry.jitter = *v;
    }
    if (auto v = doc.get_int("faults", "degrade_after")) {
      cfg.faults.retry.degrade_after = static_cast<int>(*v);
    }
  }

  // [adversary] — environment actions keyed by decision boundary, the
  // plain-scenario replay format for explored branches. `plan` is the
  // whitespace-separated to_string(AdversaryPlan) form, e.g.
  //   plan = 1:bandwidth-drop=0.25 2:disk-shock=0.9
  if (auto v = doc.get("adversary", "plan")) {
    cfg.adversary = adversary_plan_from(*v);
    validate(cfg.adversary);
  }

  // [serve] — visualization-site frame cache + viewer fan-out. Nonsensical
  // values are rejected here with the offending key named, never silently
  // clamped: a config that asks for a zero-byte cache or negative render
  // cost is a typo the author wants to hear about, not run with.
  if (doc.has_section("serve")) {
    const int viewers =
        static_cast<int>(doc.get_int("serve", "viewers").value_or(0));
    if (viewers < 0) {
      throw std::runtime_error("scenario: serve.viewers must be >= 0");
    }
    const double downlink_mbps =
        doc.get_double("serve", "viewer_downlink_mbps").value_or(100.0);
    if (downlink_mbps <= 0.0) {
      throw std::runtime_error(
          "scenario: serve.viewer_downlink_mbps must be > 0");
    }
    const Bandwidth downlink = Bandwidth::mbps(downlink_mbps);
    const double catchup_fraction =
        doc.get_double("serve", "catchup_fraction").value_or(0.0);
    if (catchup_fraction < 0.0 || catchup_fraction > 1.0) {
      throw std::runtime_error(
          "scenario: serve.catchup_fraction must be in [0, 1]");
    }
    const double catchup_start_hours =
        doc.get_double("serve", "catchup_start_hours").value_or(0.0);
    const double catchup_join_hours =
        doc.get_double("serve", "catchup_join_wall_hours").value_or(0.0);
    if (catchup_start_hours < 0.0 || catchup_join_hours < 0.0) {
      throw std::runtime_error(
          "scenario: serve catch-up times must be >= 0 hours");
    }
    const SimSeconds catchup_start = SimSeconds::hours(catchup_start_hours);
    const WallSeconds catchup_join = WallSeconds::hours(catchup_join_hours);
    cfg.serve.viewers = make_viewer_fleet(viewers, downlink, catchup_fraction,
                                          catchup_start, catchup_join);
    if (auto v = doc.get_double("serve", "cache_gb")) {
      if (*v <= 0.0) {
        throw std::runtime_error("scenario: serve.cache_gb must be > 0");
      }
      cfg.serve.session.cache.capacity = Bytes::gigabytes(*v);
    }
    if (auto v = doc.get_int("serve", "cache_frames")) {
      if (*v < 0) {
        throw std::runtime_error("scenario: serve.cache_frames must be >= 0");
      }
      cfg.serve.session.cache.max_frames = static_cast<std::size_t>(*v);
    }
    if (auto v = doc.get("serve", "cache_policy")) {
      cfg.serve.session.cache.policy = eviction_policy_from(*v);
    }
    if (auto v = doc.get_int("serve", "rerender_workers")) {
      if (*v < 1) {
        throw std::runtime_error(
            "scenario: serve.rerender_workers must be >= 1");
      }
      cfg.serve.session.rerender_workers = static_cast<int>(*v);
    }
    if (auto v = doc.get_double("serve", "rerender_fixed_seconds")) {
      if (*v < 0.0) {
        throw std::runtime_error(
            "scenario: serve.rerender_fixed_seconds must be >= 0");
      }
      cfg.serve.session.rerender_fixed_seconds = *v;
    }
    if (auto v = doc.get_double("serve", "rerender_seconds_per_gb")) {
      if (*v < 0.0) {
        throw std::runtime_error(
            "scenario: serve.rerender_seconds_per_gb must be >= 0");
      }
      cfg.serve.session.rerender_seconds_per_gb = *v;
    }
  }

  // [tree] — edge-cache distribution tree below the visualization site.
  // All key validation lives with the schema in serve/edge_tree.cpp.
  cfg.serve.tree = tree_spec_from_ini(doc);

  // [codec] — lossless frame codec (off by default; enabling it switches
  // Frame::size to encoded bytes through disk, WAN, and cache accounting).
  if (doc.has_section("codec")) {
    cfg.codec.enabled = doc.get_bool("codec", "enabled").value_or(true);
    if (auto v = doc.get("codec", "precision")) {
      if (*v == "float32") {
        cfg.codec.precision = CodecPrecision::kFloat32;
      } else if (*v == "float64") {
        cfg.codec.precision = CodecPrecision::kFloat64;
      } else {
        throw std::runtime_error(
            "scenario: codec.precision must be float32 or float64");
      }
    }
    if (auto v = doc.get_bool("codec", "verify_roundtrip")) {
      cfg.codec.verify_roundtrip = *v;
    }
  }

  // [obs] — observability layer (metrics registry + stage tracer).
  if (doc.has_section("obs")) {
    cfg.observability = doc.get_bool("obs", "enabled").value_or(true);
    if (auto v = doc.get_int("obs", "trace_capacity")) {
      if (*v <= 0) {
        throw std::runtime_error("scenario: obs.trace_capacity must be > 0");
      }
      cfg.obs.trace_capacity = static_cast<std::size_t>(*v);
    }
  }

  // [steering] — the control plane's run-side knobs. Policies and external
  // registration servers are code-level wiring; scenario files configure
  // latency, the inbox poll cadence, and record/replay log paths.
  if (doc.has_section("steering")) {
    if (auto v = doc.get_double("steering", "latency_seconds")) {
      if (*v < 0.0) {
        throw std::runtime_error(
            "scenario: steering.latency_seconds must be >= 0");
      }
      cfg.steering.latency = WallSeconds(*v);
    }
    if (auto v = doc.get_double("steering", "poll_period_seconds")) {
      if (*v <= 0.0) {
        throw std::runtime_error(
            "scenario: steering.poll_period_seconds must be > 0");
      }
      cfg.steering.poll_period = WallSeconds(*v);
    }
    if (auto v = doc.get("steering", "record_log")) {
      cfg.steering.record_log_path = *v;
    }
    if (auto v = doc.get("steering", "replay_log")) {
      cfg.steering.replay_log_path = *v;
    }
  }

  // Sanity.
  if (cfg.model.compute_scale < 1.0) {
    throw std::runtime_error("scenario: compute_scale must be >= 1");
  }
  if (cfg.sim_window.seconds() <= 0 || cfg.max_wall.seconds() <= 0) {
    throw std::runtime_error("scenario: windows must be positive");
  }
  return cfg;
}

ExperimentConfig load_scenario(const std::string& path) {
  return scenario_from_ini(IniDocument::load(path));
}

void write_result(const ExperimentResult& result, const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/" + result.config.name;
  const CalendarEpoch epoch = CalendarEpoch::aila_start();

  // Header and rows both come off the declarative telemetry schema; the
  // golden-header test pins the emitted bytes to the historical layout.
  CsvTable samples(telemetry_columns());
  for (const TelemetrySample& s : result.samples) {
    samples.add_row(telemetry_row(s, epoch));
  }
  samples.save(base + "_samples.csv");

  CsvTable vis({"wall_hours", "frame_sim_label", "frame_sim_hours",
                "sequence", "size_mb"});
  for (const VisRecord& v : result.vis_records) {
    vis.add_row({v.wall_time.as_hours(), epoch.label(v.sim_time),
                 v.sim_time.as_hours(), static_cast<long>(v.sequence),
                 v.size.mb()});
  }
  vis.save(base + "_visualization.csv");

  CsvTable decisions({"wall_hours", "free_disk_percent", "bandwidth_mbps",
                      "processors", "output_interval_min", "critical",
                      "note"});
  for (const DecisionRecord& d : result.decisions) {
    decisions.add_row({d.wall_time.as_hours(), d.input.free_disk_percent,
                       d.input.observed_bandwidth.megabits_per_sec(),
                       static_cast<long>(d.decision.processors),
                       d.decision.output_interval.as_minutes(),
                       static_cast<long>(d.decision.critical),
                       d.decision.note});
  }
  decisions.save(base + "_decisions.csv");

  CsvTable track({"sim_label", "lat", "lon", "min_pressure_hpa",
                  "max_wind_ms"});
  for (const TrackPoint& p : result.track) {
    track.add_row({epoch.label(p.time), p.eye.lat, p.eye.lon,
                   p.min_pressure_hpa, p.max_wind_ms});
  }
  track.save(base + "_track.csv");

  if (!result.clients.empty()) {
    // Per-client delivery series: viewer-side progress (Fig 7, one curve
    // per client) plus the cache-hit flag behind each delivery.
    CsvTable clients({"client", "mode", "wall_hours", "frame_sim_label",
                      "frame_sim_hours", "sequence", "size_mb", "cache_hit"});
    for (const ClientSeries& c : result.clients) {
      for (const DeliveryRecord& d : c.records) {
        clients.add_row({c.name, std::string(to_string(c.mode)),
                         d.wall_time.as_hours(), epoch.label(d.sim_time),
                         d.sim_time.as_hours(), static_cast<long>(d.sequence),
                         d.size.mb(), static_cast<long>(d.cache_hit)});
      }
    }
    clients.save(base + "_clients.csv");
  }

  IniDocument summary;
  const ExperimentSummary& s = result.summary;
  summary.set("summary", "name", result.config.name);
  summary.set("summary", "algorithm", to_string(result.config.algorithm));
  summary.set_bool("summary", "completed", s.completed);
  summary.set_double("summary", "wall_hours", s.wall_elapsed.as_hours());
  summary.set_double("summary", "sim_finished_wall_hours",
                     s.sim_finished_wall.as_hours());
  summary.set_double("summary", "sim_reached_hours", s.sim_reached.as_hours());
  summary.set_double("summary", "peak_disk_gb", s.peak_disk_used.gb());
  summary.set_double("summary", "min_free_disk_percent",
                     s.min_free_disk_percent);
  summary.set_double("summary", "stall_hours", s.total_stall_time.as_hours());
  summary.set_int("summary", "frames_written", s.frames_written);
  summary.set_int("summary", "frames_sent", s.frames_sent);
  summary.set_int("summary", "frames_visualized", s.frames_visualized);
  summary.set_int("summary", "transfer_failures", s.transfer_failures);
  summary.set_int("summary", "transfer_retries", s.transfer_retries);
  summary.set_int("summary", "restarts", s.restarts);
  summary.set_int("summary", "decisions", s.decision_count);
  if (result.config.codec.enabled) {
    summary.set_double("codec", "mean_ratio", s.codec_mean_ratio);
    summary.set_double("codec", "bytes_saved_gb", s.codec_bytes_saved.gb());
  }
  if (s.tree_tiers > 0) {
    summary.set_int("tree", "tiers", s.tree_tiers);
    summary.set_int("tree", "leaves", s.tree_leaves);
    summary.set_int("tree", "viewers", s.tree_viewers);
    summary.set_int("tree", "frames_delivered", s.tree_frames_delivered);
    summary.set_double("tree", "origin_wan_gb", s.tree_origin_wan_bytes.gb());
    summary.set_int("tree", "fill_retries", s.tree_fill_retries);
    summary.set_int("tree", "degraded_events", s.tree_degraded_events);
  }
  if (s.viewers > 0) {
    summary.set_int("serve", "viewers", s.viewers);
    summary.set_int("serve", "frames_served", s.frames_served);
    summary.set_int("serve", "cache_hits", s.cache_hits);
    summary.set_int("serve", "cache_misses", s.cache_misses);
    summary.set_int("serve", "cache_evictions", s.cache_evictions);
    summary.set_int("serve", "rerenders", s.rerenders);
    summary.set_double("serve", "peak_cache_gb", s.peak_cache_bytes.gb());
  }
  if (s.steering_events > 0) {
    summary.set_int("steering", "events", s.steering_events);
    summary.set_int("steering", "steer_renders", s.steer_renders);
    summary.set_int("steering", "steer_dedup", s.steer_dedup);
    summary.set_int("steering", "observers_peak", s.observers_peak);
  }
  summary.save(base + "_summary.ini");
}

}  // namespace adaptviz
