// Application manager: the adaptive brain of the framework.
//
// "The application manager is the primary component that makes our framework
// adaptive to resource configuration changes. It invokes a decision
// algorithm periodically ... every 1.5 hours ... monitors the available disk
// space using the UNIX command df ... also uses the average observed
// bandwidth between the simulation and visualization sites."
//
// Here `df` is DiskModel::free_percent(); the bandwidth comes from passively
// observed frame transfers (BandwidthEstimator), with an explicit network
// probe only before the first frame has moved. On each invocation the
// manager assembles a DecisionInput, runs the configured algorithm, writes
// the shared ApplicationConfiguration (bumping its version) and notifies the
// job handler. A safety net independent of the algorithm sets CRITICAL when
// the disk is nearly full and clears it with hysteresis.
#pragma once

#include <functional>
#include <vector>

#include "core/app_config.hpp"
#include "core/decision.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "transport/bandwidth_estimator.hpp"

namespace adaptviz {

/// Live application-state snapshot the framework supplies on each
/// invocation. The fields the decision algorithms consume (work units,
/// frame size, integration step, remaining time, resolution, link
/// degradation) live in the shared ResourceSnapshot base — the manager
/// forwards them into DecisionInput with one slice assignment.
struct ApplicationStatus : ResourceSnapshot {
  int max_usable_processors = 1;
  bool finished = false;
};

/// Old name for the fields now shared through ResourceSnapshot. Kept so
/// downstream code that spelled the snapshot type explicitly keeps
/// compiling; new code should use ResourceSnapshot.
using ApplicationResourceState [[deprecated(
    "use ResourceSnapshot from core/decision.hpp")]] = ResourceSnapshot;

struct DecisionRecord {
  WallSeconds wall_time{};
  DecisionInput input;
  Decision decision;
};

class ApplicationManager {
 public:
  struct Options {
    WallSeconds period = WallSeconds::hours(1.5);
    DecisionBounds bounds{};
    /// Safety net thresholds (percent free) independent of the algorithm.
    double critical_set_percent = 5.0;
    double critical_clear_percent = 12.0;
    /// Payload for the fallback bandwidth probe.
    Bytes probe_size = Bytes::megabytes(10.0);
    /// Processor floor forwarded to the algorithms (machine min_cores).
    int min_processors = 1;
    /// When set, every configuration change is also persisted to this INI
    /// file (atomically) — the on-disk protocol of the paper's Section III.
    std::string config_file_path;
  };

  using StatusProvider = std::function<ApplicationStatus()>;
  using ConfigChangedFn = std::function<void()>;

  ApplicationManager(EventQueue& queue, DecisionAlgorithm& algorithm,
                     const PerformanceModel& perf, DiskModel& disk,
                     NetworkLink& link, BandwidthEstimator& estimator,
                     ApplicationConfiguration& shared_config,
                     StatusProvider status, ConfigChangedFn notify,
                     Options options);

  /// Performs the first invocation immediately and schedules the periodic
  /// loop.
  void start();
  void stop();

  /// One decision cycle (also callable directly, e.g. from tests).
  void invoke();

  /// Steering: replaces the output-interval bounds the decision algorithms
  /// work within (takes effect from the next invocation).
  void set_bounds(const DecisionBounds& bounds) { options_.bounds = bounds; }
  [[nodiscard]] const DecisionBounds& bounds() const {
    return options_.bounds;
  }

  /// Steering: hold / release the simulation. Applied immediately through
  /// the shared configuration (no restart; the process stalls in place).
  void set_paused(bool paused);

  /// Control plane: the aggregated observer proposals become the third
  /// decision input. A proposal with max_output_interval > 0 tightens the
  /// upper output-interval bound from the next invocation on; the digest
  /// itself rides into every DecisionInput for the record.
  void set_observer_digest(const ObserverDigest& digest) {
    observers_ = digest;
  }
  [[nodiscard]] const ObserverDigest& observer_digest() const {
    return observers_;
  }

  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const {
    return decisions_;
  }

  /// Decision history plus the steering-mutable knobs (the bounds a
  /// kSetOutputBounds command rewrites and the aggregated observer
  /// digest). The periodic invocation event is queue state.
  struct State {
    bool running = false;
    DecisionBounds bounds{};
    ObserverDigest observers{};
    std::vector<DecisionRecord> decisions;
  };
  [[nodiscard]] State snapshot() const {
    return State{running_, options_.bounds, observers_, decisions_};
  }
  void restore(const State& s) {
    running_ = s.running;
    options_.bounds = s.bounds;
    observers_ = s.observers;
    decisions_ = s.decisions;
  }

 private:
  void schedule_next();
  [[nodiscard]] Bandwidth measure_bandwidth();

  EventQueue& queue_;
  DecisionAlgorithm& algorithm_;
  const PerformanceModel& perf_;
  DiskModel& disk_;
  NetworkLink& link_;
  BandwidthEstimator& estimator_;
  ApplicationConfiguration& config_;
  StatusProvider status_;
  ConfigChangedFn notify_;
  Options options_;

  bool running_ = false;
  ObserverDigest observers_{};
  std::vector<DecisionRecord> decisions_;
};

}  // namespace adaptviz
