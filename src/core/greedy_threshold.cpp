#include "core/greedy_threshold.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.hpp"

namespace adaptviz {

GreedyThresholdAlgorithm::GreedyThresholdAlgorithm(GreedyThresholds thresholds)
    : thresholds_(thresholds) {
  if (!(thresholds.critical < thresholds.low_lower &&
        thresholds.low_lower < thresholds.low_upper &&
        thresholds.low_upper <= thresholds.high)) {
    throw std::invalid_argument("GreedyThresholds: must be ordered");
  }
}

Decision GreedyThresholdAlgorithm::decide(const DecisionInput& in) {
  const PerformanceModel& perf = *in.perf;
  const double d = in.free_disk_percent;
  const GreedyThresholds& th = thresholds_;

  const double min_oi = std::max(in.bounds.min_output_interval.seconds(),
                                 in.integration_step.seconds());
  const double max_oi = in.bounds.max_output_interval.seconds();
  const double old_oi = in.current_output_interval.seconds();
  // The interval is quantized to whole integration steps, so "already at
  // maxOI" means "within one step of it" — otherwise Algorithm 1's line-7
  // slowdown branch could never trigger at step sizes that do not divide
  // the bound.
  const bool at_max_oi = old_oi >= max_oi - in.integration_step.seconds();
  const double mintime = perf.fastest_step_time(in.work_units).seconds();
  const double maxtime =
      perf.slowest_step_time(in.work_units, in.min_processors).seconds();
  const double oldtime =
      perf.step_time(in.current_processors, in.work_units).seconds();

  Decision out;
  out.processors = in.current_processors;
  out.output_interval = in.current_output_interval;

  if (d <= th.critical) {
    // Line 2: set CRITICAL flag -> stall the simulation.
    out.critical = true;
    out.note = format("disk %.0f%% <= %.0f%%: CRITICAL", d, th.critical);
  } else if (d <= th.low_upper) {
    if (d >= th.low_lower) {
      // Line 5: stretch the output interval proportionally to the deficit.
      const double new_oi =
          old_oi + (th.low_upper - d) / th.low_lower * (max_oi - old_oi);
      out.output_interval = SimSeconds(new_oi);
      out.note = format("disk %.0f%%: stretch OI %.1f -> %.1f sim-min", d,
                        old_oi / 60.0, new_oi / 60.0);
    } else if (at_max_oi) {
      // Line 7: output already minimal; slow the simulation down.
      const double newtime =
          oldtime +
          (th.low_lower - d) / (th.low_lower - th.critical) *
              (maxtime - oldtime);
      out.processors = perf.processors_for(WallSeconds(newtime),
                                           in.work_units);
      out.note = format("disk %.0f%%: slow down %.1fs -> %.1fs/step (%d procs)",
                        d, oldtime, newtime, out.processors);
    } else {
      // D fell below low_lower before the interval reached its bound (a
      // fast dive can skip the [low_lower, low_upper] band entirely between
      // invocations). The stretch formula yields exactly maxOI at
      // D == low_lower, so the consistent continuation below it is the full
      // stretch; a literal no-op here would ride the disk straight into
      // CRITICAL.
      out.output_interval = SimSeconds(max_oi);
      out.note = format("disk %.0f%%: jump OI %.1f -> max %.1f sim-min", d,
                        old_oi / 60.0, max_oi / 60.0);
    }
  } else if (d >= th.high) {
    if (oldtime > mintime + 1e-9) {
      // Line 11: recover simulation rate first.
      const double newtime =
          oldtime - (d - th.high) / (100.0 - th.high) * (oldtime - mintime);
      out.processors = perf.processors_for(WallSeconds(newtime),
                                           in.work_units);
      out.note = format("disk %.0f%%: speed up %.1fs -> %.1fs/step (%d procs)",
                        d, oldtime, newtime, out.processors);
    } else if (old_oi > min_oi + 1e-9) {
      // Line 13: then recover output frequency.
      const double new_oi =
          old_oi - (d - th.high) / (100.0 - th.high) * (old_oi - min_oi);
      out.output_interval = SimSeconds(new_oi);
      out.note = format("disk %.0f%%: shrink OI %.1f -> %.1f sim-min", d,
                        old_oi / 60.0, new_oi / 60.0);
    } else {
      out.note = format("disk %.0f%%: already at max rate and frequency", d);
    }
  } else {
    out.note = format("disk %.0f%%: between thresholds, hold", d);
  }

  out.output_interval = quantize_output_interval(
      out.output_interval, in.integration_step, in.bounds);
  out.processors =
      std::clamp(out.processors, in.min_processors, in.max_processors);
  return out;
}

}  // namespace adaptviz
