// Adversarial environment actions, keyed by decision boundary.
//
// The explorer (src/explore) searches over what the *environment* can do
// to a run — bandwidth collapse, fault bursts, disk shocks — while the
// adaptive framework responds with its usual decision machinery. To make
// an explored branch reproducible as a plain scenario run, adversary
// actions are not free-floating wall-time events: each action fires
// *synchronously right after the k-th application-manager decision*, the
// same instant the explorer branches. A plan is therefore just a list of
// (decision index, action) pairs, and replaying it through
// AdaptiveFramework::set_adversary_plan() reproduces the explored branch
// bit for bit — the same mutations at the same virtual times, with no
// extra RNG draws.
//
// Actions are sticky (they set the new environment level; they do not
// decay) and none of them consumes a random draw, so a plan's effect is a
// pure function of (plan, scenario).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adaptviz {

/// What the environment does to the run at a decision boundary.
enum class AdversaryActionKind {
  /// Multiply the WAN link's efficiency by `magnitude` (0 < m <= 1):
  /// a routing change or congestion collapse. 0.25 = the link drops to a
  /// quarter of its current effective bandwidth.
  kBandwidthDrop,
  /// Set the WAN per-transfer failure probability to `magnitude`
  /// (0 <= m <= 1): a flaky peering link or mid-run packet-loss storm.
  kFailureBurst,
  /// Fill `magnitude` (0 < m <= 1) of the *capacity* of the simulation
  /// site's scratch disk with external bytes (a competing job's output).
  /// Clamped to the free space actually available.
  kDiskShock,
};

const char* to_string(AdversaryActionKind kind);
/// Parses "bandwidth-drop" | "failure-burst" | "disk-shock"; throws
/// std::runtime_error otherwise.
AdversaryActionKind adversary_action_kind_from(const std::string& name);

struct AdversaryAction {
  /// Fires immediately after the decision with this index (0-based; the
  /// initial decision made inside start() is index 0).
  int after_decision = 0;
  AdversaryActionKind kind = AdversaryActionKind::kBandwidthDrop;
  double magnitude = 1.0;

  friend bool operator==(const AdversaryAction& a, const AdversaryAction& b) {
    return a.after_decision == b.after_decision && a.kind == b.kind &&
           a.magnitude == b.magnitude;
  }
};

/// Human/INI-readable form: "<k>:<kind>=<magnitude>", e.g.
/// "2:bandwidth-drop=0.25". The inverse of adversary_action_from().
std::string to_string(const AdversaryAction& action);
/// Parses the to_string() form; throws std::runtime_error naming the
/// malformed token.
AdversaryAction adversary_action_from(const std::string& text);

/// An adversary plan: actions sorted by after_decision (stable for equal
/// indices — they apply in list order). validate() checks magnitudes and
/// ordering.
using AdversaryPlan = std::vector<AdversaryAction>;

/// Throws std::invalid_argument on out-of-range magnitudes, negative
/// decision indices, or an unsorted plan.
void validate(const AdversaryPlan& plan);

/// One-line plan rendering: actions joined by ' ', "" for an empty plan.
std::string to_string(const AdversaryPlan& plan);
/// Parses a whitespace-separated list of to_string(action) tokens.
AdversaryPlan adversary_plan_from(const std::string& text);

}  // namespace adaptviz
