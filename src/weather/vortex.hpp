// Holland (1980) analytic tropical-cyclone profile.
//
// Used twice: to insert the initial "bogus" depression into the synthetic
// analysis (standard practice when the global analysis under-resolves a
// storm), and as the target shape of the intensification forcing that deepens
// the simulated storm toward the intensity ODE's central pressure.
#pragma once

#include "weather/grid.hpp"
#include "weather/state.hpp"

namespace adaptviz {

struct HollandVortex {
  LatLon center;
  /// Central pressure deficit (hPa, positive = deeper storm).
  double deficit_hpa = 10.0;
  /// Radius of maximum wind (km).
  double r_max_km = 80.0;
  /// Holland shape parameter (1 < B < 2.5 for real storms).
  double b = 1.5;

  /// Pressure anomaly (hPa, negative inside the storm) at radius r (km):
  /// -deficit * exp(-(r_max/r)^B).
  [[nodiscard]] double pressure_anomaly_hpa(double r_km) const;

  /// Height anomaly (m) via the kHpaPerMetre diagnostic mapping.
  [[nodiscard]] double height_anomaly_m(double r_km) const;

  /// Gradient-wind-balanced tangential wind (m/s, cyclonic positive) at
  /// radius r for Coriolis parameter f: v^2/r + f*v = g * d(h)/dr.
  [[nodiscard]] double balanced_tangential_wind(double r_km, double f) const;

  /// Adds the vortex (height depression + balanced cyclonic winds) onto a
  /// domain state in place.
  void deposit(DomainState& state) const;
};

/// Great-circle-free planar distance (km) between two points on the model's
/// equirectangular projection.
double distance_km(LatLon a, LatLon b);

}  // namespace adaptviz
