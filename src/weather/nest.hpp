// Moving two-way nest.
//
// WRF nests are finer-resolution domains embedded in the parent; the paper
// uses a 1:3 nesting ratio, spawns the nest at the location of lowest
// pressure and moves it with the eye. This implementation reproduces that:
// the nest integrates its own shallow-water dynamics at parent_resolution/3
// with three substeps per parent step, receives boundary conditions
// interpolated from the parent every substep, and feeds its interior back
// into the parent (two-way coupling by restriction) after each parent step.
// When the eye drifts too far from the nest centre the nest is re-centred,
// reusing overlapping fine data and falling back to parent interpolation
// elsewhere.
#pragma once

#include <optional>

#include "weather/grid.hpp"
#include "weather/state.hpp"

namespace adaptviz {

/// Time (and space) refinement ratio between parent and nest (paper: 1:3).
inline constexpr int kNestRatio = 3;

class NestDomain {
 public:
  /// Creates a nest of `extent_deg` x `extent_deg` centred as close to
  /// `center` as fits inside the parent (with a 2-parent-cell margin), at
  /// parent resolution / kNestRatio, initialized by interpolation from the
  /// parent.
  NestDomain(const DomainState& parent, LatLon center, double extent_deg);

  [[nodiscard]] const DomainState& state() const { return state_; }
  [[nodiscard]] DomainState& state() { return state_; }
  [[nodiscard]] const GridSpec& grid() const { return state_.grid; }
  [[nodiscard]] LatLon center() const;
  [[nodiscard]] double extent_deg() const { return extent_deg_; }

  /// Overwrites the nest's boundary band (outer `width` points) with values
  /// interpolated from the parent.
  void apply_boundary(const DomainState& parent, int width = 3);

  /// Restricts the nest interior onto overlapping parent points (two-way
  /// feedback). The boundary band is excluded.
  void feedback(DomainState& parent, int exclude_width = 4) const;

  /// True when `eye` is farther than `threshold_deg` from the nest centre.
  [[nodiscard]] bool needs_recenter(LatLon eye,
                                    double threshold_deg = 1.25) const;

  /// Rebuilds the nest around `eye`: overlapping area keeps fine data,
  /// the rest comes from the parent.
  void recenter(const DomainState& parent, LatLon eye);

  /// Replaces the nest state wholesale (checkpoint restore). The grid in
  /// `s` must have this nest's resolution.
  void restore_state(DomainState s);

 private:
  [[nodiscard]] static GridSpec make_grid(const GridSpec& parent_grid,
                                          LatLon center, double extent_deg,
                                          double resolution_km);
  void fill_from(const DomainState& src);

  DomainState state_;
  double extent_deg_;
};

}  // namespace adaptviz
