// Nonlinear shallow-water dynamical core on a beta plane.
//
// Equations (A-grid, centered differences, WRF-style 3-stage Runge-Kutta):
//
//   du/dt = -(u+Us) u_x - (v+Vs) u_y + f v - g h_x + nu lap(u) - r u
//   dv/dt = -(u+Us) v_x - (v+Vs) v_y - f u - g h_y + nu lap(v) - r v
//   dh/dt = -d/dx((H+h)(u+Us)) - d/dy((H+h)(v+Vs)) + Q + nu lap(h) - r h
//
// (Us, Vs) is the uniform large-scale steering current (a Galilean ambient
// flow supplied by the synthetic analysis), Q the physics mass tendency
// (intensification / decay), r a per-point relaxation-to-rest coefficient
// (land friction, far-field nudging). nu scales as alpha*dx^2/dt so the
// damping of grid-scale noise is resolution-invariant; boundary points are
// held fixed with a sponge relaxing the outermost rows toward rest.
//
// With dt = 6*dx (WRF's time-step rule, dx in km, dt in s) the fastest
// gravity wave (sqrt(gH) ~ 63 m/s) gives a Courant number ~0.38 at any
// resolution, within RK3's stability region.
#pragma once

#include <optional>

#include "weather/state.hpp"

namespace adaptviz {

struct SwForcing {
  double steering_u = 0.0;                 // m/s
  double steering_v = 0.0;                 // m/s
  const Field2D* mass_tendency = nullptr;  // dh/dt source (m/s), optional
  const Field2D* u_tendency = nullptr;     // du/dt source (m/s^2), optional
  const Field2D* v_tendency = nullptr;     // dv/dt source (m/s^2), optional
  const Field2D* relaxation = nullptr;     // r(x,y) in 1/s, optional
};

/// Which tendency implementation a solver runs. Both produce bitwise
/// identical fields — the regression tests step them side by side — so the
/// scalar loop doubles as the living correctness oracle for the fast path.
enum class SwKernel {
  /// Contiguous row kernels: branch-free interior stencil over raw
  /// ADAPTVIZ_RESTRICT spans, optional forcing/relaxation as hoisted row
  /// passes, sponge applied by precomputed boundary bands. The default.
  kRowKernel,
  /// The original per-point scalar loop with per-point branches. Kept as
  /// the baseline for bench_micro's kernel speedup case and as the bitwise
  /// oracle for the row path.
  kScalarReference,
};

struct SwParams {
  double gravity = 9.81;
  double mean_depth = kMeanDepthM;
  /// Diffusion strength: nu = alpha * dx^2 / dt.
  double diffusion_alpha = 0.015;
  /// Lateral boundary sponge: width in points and relaxation time at the
  /// outermost interior row (weakening inward).
  int sponge_width = 5;
  double sponge_tau_seconds = 1200.0;
  /// Worker threads for the tendency/update loops (row decomposition, the
  /// shared-memory analogue of WRF's MPI domain decomposition). Results are
  /// bitwise identical for any count. Lanes come from the shared persistent
  /// pool (util/thread_pool.hpp).
  int threads = 1;
  /// Benchmark escape hatch: when false, parallel regions spawn and join
  /// fresh std::threads per call (the pre-pool behavior) instead of using
  /// the persistent pool. Only bench_micro's pool-vs-spawn cases set this.
  bool use_thread_pool = true;
  /// Tendency implementation; tests and bench_micro pin kScalarReference
  /// to compare against the vectorizable row kernels.
  SwKernel kernel = SwKernel::kRowKernel;
};

/// A solver owns its step scratch (RK3 stage state and tendency fields), so
/// distinct instances never alias — two solvers on one thread, or one per
/// thread, are safe. A single instance is NOT safe for concurrent step()
/// calls; the internal row decomposition is how a step uses many cores.
class SwSolver {
 public:
  explicit SwSolver(SwParams params = {});

  /// Advances the state by one RK3 step of length dt (seconds).
  void step(DomainState& state, double dt_seconds,
            const SwForcing& forcing) const;

  /// WRF's rule of thumb: seconds of time step per km of grid spacing.
  static double dt_for_resolution_km(double res_km) { return 6.0 * res_km; }

  [[nodiscard]] const SwParams& params() const { return params_; }

 private:
  struct Tendency {
    Field2D dh, du, dv;
  };
  void compute_tendency(const DomainState& s, const SwForcing& f, double dt,
                        Tendency& out) const;

  SwParams params_;
  // Step scratch, reused across steps to kill per-step allocation churn
  // (and explicitly per-instance: a `static thread_local` here once let two
  // solvers on one thread alias the same tendency fields).
  mutable Tendency tend_scratch_;
  mutable std::optional<DomainState> stage_scratch_;
};

}  // namespace adaptviz
