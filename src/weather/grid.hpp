// Structured lat-lon grids and 2-D fields for the mesoscale model.
//
// A GridSpec describes a regular lat-lon box with square (in km) spacing —
// the paper's parent domain is 60E-120E, 10S-40N. Field2D is a row-major
// (ny, nx) array of doubles with (i=x/lon, j=y/lat) indexing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// No-alias qualifier for the hot stencil kernels: a pointer declared
/// ADAPTVIZ_RESTRICT promises the compiler that the object it reaches is not
/// written through any other pointer in scope, which is what lets the row
/// kernels in dynamics.cpp vectorize without runtime alias checks.
#if defined(_MSC_VER)
#define ADAPTVIZ_RESTRICT __restrict
#else
#define ADAPTVIZ_RESTRICT __restrict__
#endif

namespace adaptviz {

/// Kilometres per degree of latitude (and of longitude at the equator on the
/// model's Cartesian-like projection).
inline constexpr double kKmPerDegree = 111.2;

struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

class GridSpec {
 public:
  GridSpec() = default;
  /// A grid covering [lon0, lon0+extent_lon_deg] x [lat0, lat0+extent_lat_deg]
  /// at `resolution_km` spacing. Point counts are derived (>= 2 each way).
  GridSpec(double lon0, double lat0, double extent_lon_deg,
           double extent_lat_deg, double resolution_km);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t point_count() const { return nx_ * ny_; }
  [[nodiscard]] double resolution_km() const { return res_km_; }
  /// Grid spacing in metres (used by the dynamics).
  [[nodiscard]] double dx_m() const { return res_km_ * 1000.0; }

  [[nodiscard]] double lon0() const { return lon0_; }
  [[nodiscard]] double lat0() const { return lat0_; }
  [[nodiscard]] double extent_lon() const { return ext_lon_; }
  [[nodiscard]] double extent_lat() const { return ext_lat_; }

  /// Geographic coordinates of grid point (i, j).
  [[nodiscard]] LatLon at(std::size_t i, std::size_t j) const;
  /// Fractional grid coordinates of a geographic point (may be outside).
  [[nodiscard]] double x_of_lon(double lon) const;
  [[nodiscard]] double y_of_lat(double lat) const;
  [[nodiscard]] bool contains(LatLon p) const;

  friend bool operator==(const GridSpec&, const GridSpec&) = default;

 private:
  double lon0_ = 0.0;
  double lat0_ = 0.0;
  double ext_lon_ = 0.0;
  double ext_lat_ = 0.0;
  double res_km_ = 1.0;
  std::size_t nx_ = 2;
  std::size_t ny_ = 2;
};

class Field2D {
 public:
  Field2D() = default;
  Field2D(std::size_t nx, std::size_t ny, double fill = 0.0);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[j * nx_ + i];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[j * nx_ + i];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  /// Row j as a contiguous raw span of nx() doubles. Distinct rows never
  /// overlap, so a kernel may declare several rows of one field (or rows of
  /// different fields) ADAPTVIZ_RESTRICT and stream over them branch-free.
  [[nodiscard]] double* row(std::size_t j) { return data_.data() + j * nx_; }
  [[nodiscard]] const double* row(std::size_t j) const {
    return data_.data() + j * nx_;
  }

  void fill(double v);
  /// Reshapes to (nx, ny) and zero-fills, reusing the existing allocation
  /// when capacity allows — for scratch fields that alternate between
  /// domain sizes (parent vs. nest) every step.
  void resize(std::size_t nx, std::size_t ny) {
    nx_ = nx;
    ny_ = ny;
    data_.assign(nx * ny, 0.0);
  }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Bilinear sample at fractional grid coordinates (clamped at edges).
  [[nodiscard]] double sample(double x, double y) const;

  friend bool operator==(const Field2D&, const Field2D&) = default;

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<double> data_;
};

/// 5-point smoother (one Jacobi pass), used by the tracker to de-noise the
/// pressure field before searching for the eye.
Field2D smooth(const Field2D& f, int passes = 1);

}  // namespace adaptviz
