#include "weather/analysis.hpp"

#include <cmath>

#include "numerics/interpolation.hpp"
#include "util/rng.hpp"

namespace adaptviz {

double SteeringProfile::u(SimSeconds t) const {
  const double h = t.as_hours();
  const double w =
      1.0 / (1.0 + std::exp(-(h - transition_hour) / transition_width_hours));
  return u_early + w * (u_late - u_early);
}

double SteeringProfile::v(SimSeconds t) const {
  const double h = t.as_hours();
  const double w =
      1.0 / (1.0 + std::exp(-(h - transition_hour) / transition_width_hours));
  return v_early + w * (v_late - v_early);
}

SyntheticAnalysis SyntheticAnalysis::generate(double lon0, double lat0,
                                              double extent_lon_deg,
                                              double extent_lat_deg,
                                              const AnalysisConfig& config) {
  SyntheticAnalysis a;
  a.config_ = config;
  // 1-degree analysis grid, like FNL.
  a.coarse_ = DomainState(
      GridSpec(lon0, lat0, extent_lon_deg, extent_lat_deg, kKmPerDegree));

  // Correlated "analysis uncertainty": sum of a few long-wavelength sine
  // modes with random phases (smooth by construction, cheap to evaluate).
  Rng rng(config.seed);
  struct Mode {
    double kx, ky, phase, amp;
  };
  Mode modes[5];
  for (auto& m : modes) {
    m.kx = rng.uniform(0.5, 2.5);
    m.ky = rng.uniform(0.5, 2.5);
    m.phase = rng.uniform(0.0, 6.28318);
    m.amp = config.perturbation_m * rng.uniform(0.3, 1.0);
  }

  const GridSpec& g = a.coarse_.grid;
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const double fx =
          static_cast<double>(i) / static_cast<double>(g.nx() - 1);
      const double fy =
          static_cast<double>(j) / static_cast<double>(g.ny() - 1);
      double dh = 0.0;
      for (const auto& m : modes) {
        dh += m.amp * std::sin(6.28318 * (m.kx * fx + m.ky * fy) + m.phase);
      }
      a.coarse_.h(i, j) = dh;
    }
  }

  // Bogus the initial depression into the analysis.
  config.initial_vortex.deposit(a.coarse_);
  return a;
}

DomainState preprocess(const SyntheticAnalysis& analysis,
                       const GridSpec& target) {
  const DomainState& src = analysis.coarse_state();
  const GridSpec& sg = src.grid;
  DomainState out(target);
  for (std::size_t j = 0; j < target.ny(); ++j) {
    for (std::size_t i = 0; i < target.nx(); ++i) {
      const LatLon p = target.at(i, j);
      const double x = sg.x_of_lon(p.lon);
      const double y = sg.y_of_lat(p.lat);
      out.h(i, j) = bicubic(src.h.data(), sg.nx(), sg.ny(), x, y);
      out.u(i, j) = bilinear(src.u.data(), sg.nx(), sg.ny(), x, y);
      out.v(i, j) = bilinear(src.v.data(), sg.nx(), sg.ny(), x, y);
    }
  }
  return out;
}

}  // namespace adaptviz
