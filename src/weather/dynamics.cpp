#include "weather/dynamics.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel_for.hpp"

namespace adaptviz {
namespace {

// Routes a parallel region to the persistent pool or, for bench_micro's
// pool-vs-spawn baseline, to the spawn-per-call implementation.
template <typename Body>
void dispatch_rows(const SwParams& p, std::size_t begin, std::size_t end,
                   const Body& body) {
  if (p.use_thread_pool) {
    parallel_for_rows(begin, end, p.threads, body);
  } else {
    parallel_for_rows_spawn(begin, end, p.threads, body);
  }
}

}  // namespace

SwSolver::SwSolver(SwParams params) : params_(params) {
  if (params_.mean_depth <= 0 || params_.gravity <= 0 ||
      params_.diffusion_alpha < 0 || params_.sponge_width < 0) {
    throw std::invalid_argument("SwSolver: bad parameters");
  }
}

void SwSolver::compute_tendency(const DomainState& s, const SwForcing& f,
                                double dt, Tendency& out) const {
  // Histogram-only: three tendencies per step would flood the trace ring.
  static thread_local obs::HotHistogram tendency_hist("sim.tendency");
  obs::ScopedTimer span(tendency_hist);
  const GridSpec& g = s.grid;
  const std::size_t nx = g.nx();
  const std::size_t ny = g.ny();
  const double dx = g.dx_m();
  const double inv2dx = 1.0 / (2.0 * dx);
  const double nu = params_.diffusion_alpha * dx * dx / dt;
  const double nu_invdx2 = nu / (dx * dx);
  const double grav = params_.gravity;
  const double hbar = params_.mean_depth;

  // Zero-filled scratch, reusing allocations even when the solver
  // alternates between parent- and nest-sized grids.
  out.dh.resize(nx, ny);
  out.du.resize(nx, ny);
  out.dv.resize(nx, ny);

  // Coriolis per row (varies with latitude: the beta effect is what makes
  // cyclones drift poleward-westward even in quiescent environments).
  std::vector<double> frow(ny);
  for (std::size_t j = 0; j < ny; ++j) frow[j] = coriolis(g.at(0, j).lat);

  auto tendency_rows = [&](std::size_t j_begin, std::size_t j_end) {
  for (std::size_t j = j_begin; j < j_end; ++j) {
    const double fcor = frow[j];
    for (std::size_t i = 1; i + 1 < nx; ++i) {
      const double ua = s.u(i, j) + f.steering_u;
      const double va = s.v(i, j) + f.steering_v;

      const double h_x = (s.h(i + 1, j) - s.h(i - 1, j)) * inv2dx;
      const double h_y = (s.h(i, j + 1) - s.h(i, j - 1)) * inv2dx;
      const double u_x = (s.u(i + 1, j) - s.u(i - 1, j)) * inv2dx;
      const double u_y = (s.u(i, j + 1) - s.u(i, j - 1)) * inv2dx;
      const double v_x = (s.v(i + 1, j) - s.v(i - 1, j)) * inv2dx;
      const double v_y = (s.v(i, j + 1) - s.v(i, j - 1)) * inv2dx;

      const double lap_u = (s.u(i + 1, j) + s.u(i - 1, j) + s.u(i, j + 1) +
                            s.u(i, j - 1) - 4.0 * s.u(i, j)) *
                           nu_invdx2;
      const double lap_v = (s.v(i + 1, j) + s.v(i - 1, j) + s.v(i, j + 1) +
                            s.v(i, j - 1) - 4.0 * s.v(i, j)) *
                           nu_invdx2;
      const double lap_h = (s.h(i + 1, j) + s.h(i - 1, j) + s.h(i, j + 1) +
                            s.h(i, j - 1) - 4.0 * s.h(i, j)) *
                           nu_invdx2;

      double du = -ua * u_x - va * u_y + fcor * s.v(i, j) - grav * h_x + lap_u;
      double dv = -ua * v_x - va * v_y - fcor * s.u(i, j) - grav * h_y + lap_v;

      // Flux-form mass continuity: -div((H+h) * (u_total)).
      const double depth_e = hbar + 0.5 * (s.h(i + 1, j) + s.h(i, j));
      const double depth_w = hbar + 0.5 * (s.h(i - 1, j) + s.h(i, j));
      const double depth_n = hbar + 0.5 * (s.h(i, j + 1) + s.h(i, j));
      const double depth_s = hbar + 0.5 * (s.h(i, j - 1) + s.h(i, j));
      const double flux_e =
          depth_e * 0.5 * (s.u(i + 1, j) + s.u(i, j) + 2.0 * f.steering_u);
      const double flux_w =
          depth_w * 0.5 * (s.u(i - 1, j) + s.u(i, j) + 2.0 * f.steering_u);
      const double flux_n =
          depth_n * 0.5 * (s.v(i, j + 1) + s.v(i, j) + 2.0 * f.steering_v);
      const double flux_s =
          depth_s * 0.5 * (s.v(i, j - 1) + s.v(i, j) + 2.0 * f.steering_v);
      double dh = -((flux_e - flux_w) + (flux_n - flux_s)) / dx + lap_h;

      if (f.mass_tendency != nullptr) dh += (*f.mass_tendency)(i, j);
      if (f.u_tendency != nullptr) du += (*f.u_tendency)(i, j);
      if (f.v_tendency != nullptr) dv += (*f.v_tendency)(i, j);
      if (f.relaxation != nullptr) {
        const double r = (*f.relaxation)(i, j);
        du -= r * s.u(i, j);
        dv -= r * s.v(i, j);
        dh -= r * s.h(i, j);
      }
      out.du(i, j) = du;
      out.dv(i, j) = dv;
      out.dh(i, j) = dh;
    }

    // Sponge: relax the outer rows toward rest, strongest at the boundary.
    const int w = params_.sponge_width;
    if (w > 0 && params_.sponge_tau_seconds > 0) {
      const double r0 = 1.0 / params_.sponge_tau_seconds;
      for (std::size_t i = 1; i + 1 < nx; ++i) {
        const std::size_t d = std::min(std::min(i, nx - 1 - i),
                                       std::min(j, ny - 1 - j));
        if (d >= static_cast<std::size_t>(w)) continue;
        const double wgt =
            1.0 - static_cast<double>(d) / static_cast<double>(w);
        const double r = r0 * wgt * wgt;
        out.du(i, j) -= r * s.u(i, j);
        out.dv(i, j) -= r * s.v(i, j);
        out.dh(i, j) -= r * s.h(i, j);
      }
    }
  }
  };  // tendency_rows
  dispatch_rows(params_, 1, ny - 1, tendency_rows);
}

void SwSolver::step(DomainState& state, double dt, const SwForcing& forcing) const {
  if (dt <= 0) throw std::invalid_argument("SwSolver::step: dt must be > 0");
  static thread_local obs::HotHistogram step_hist("sim.step");
  static thread_local obs::HotCounter step_count("sim.steps");
  obs::ScopedSpan span("sim.step", step_hist);
  if (obs::Counter* c = step_count.resolve(obs::current())) c->add(1);
  const std::size_t n = state.h.size();

  // WRF ARW RK3: phi* = phi + dt/3 F(phi); phi** = phi + dt/2 F(phi*);
  // phi^{n+1} = phi + dt F(phi**).
  Tendency& tend = tend_scratch_;
  // Reuse the stage buffers across steps: copy-assign lands in the already
  // allocated fields instead of allocating three grids per step.
  if (stage_scratch_) {
    *stage_scratch_ = state;
  } else {
    stage_scratch_.emplace(state);
  }
  DomainState& stage = *stage_scratch_;

  const double frac[3] = {dt / 3.0, dt / 2.0, dt};
  for (int k = 0; k < 3; ++k) {
    compute_tendency(stage, forcing, dt, tend);
    const double a = frac[k];
    // Write into `stage` for the first two stages, into `state` on the last.
    // Hoist raw pointers once per stage; the update loop is pure streaming.
    DomainState& dst = (k == 2) ? state : stage;
    double* dh = dst.h.data().data();
    double* du = dst.u.data().data();
    double* dv = dst.v.data().data();
    const double* h0 = state.h.data().data();
    const double* u0 = state.u.data().data();
    const double* v0 = state.v.data().data();
    const double* th = tend.dh.data().data();
    const double* tu = tend.du.data().data();
    const double* tv = tend.dv.data().data();
    static thread_local obs::HotHistogram update_hist("sim.update");
    obs::ScopedTimer update_span(update_hist);
    dispatch_rows(params_, 0, n, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t idx = lo; idx < hi; ++idx) {
        dh[idx] = h0[idx] + a * th[idx];
        du[idx] = u0[idx] + a * tu[idx];
        dv[idx] = v0[idx] + a * tv[idx];
      }
    });
  }
}

}  // namespace adaptviz
