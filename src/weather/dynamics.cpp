#include "weather/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel_for.hpp"

// Bitwise determinism contract. Both tendency kernels (SwKernel) and both
// RK3 update kernels below evaluate the same per-point expression in the
// same order, so the fast paths round identically to the scalar reference:
// the only transformations applied are branch hoisting (moving `if (f.x)`
// out of the inner loop into separate row passes) and contiguous-span
// addressing — neither reassociates floating-point arithmetic. Vector lanes
// execute the same IEEE ops as scalar code, and the weather library is
// built with -ffp-contract=off (see src/weather/CMakeLists.txt) so no FMA
// contraction can split the two paths even under -march=native.

namespace adaptviz {
namespace {

// Routes a parallel region to the persistent pool or, for bench_micro's
// pool-vs-spawn baseline, to the spawn-per-call implementation.
template <typename Body>
void dispatch_rows(const SwParams& p, std::size_t begin, std::size_t end,
                   const Body& body) {
  if (p.use_thread_pool) {
    parallel_for_rows(begin, end, p.threads, body);
  } else {
    parallel_for_rows_spawn(begin, end, p.threads, body);
  }
}

// One interior row of the shallow-water tendency stencil, branch-free over
// raw spans: hm/hc/hp are rows j-1/j/j+1 of h (likewise u, v), odh/odu/odv
// the output row. Every expression matches the scalar reference bit for
// bit; only the addressing and branch placement differ. A free function
// with restrict parameters rather than a lambda body because that is the
// shape GCC's loop vectorizer handles without runtime alias versioning.
inline void stencil_interior_row(
    std::size_t nx, const double* ADAPTVIZ_RESTRICT hm,
    const double* ADAPTVIZ_RESTRICT hc, const double* ADAPTVIZ_RESTRICT hp,
    const double* ADAPTVIZ_RESTRICT um, const double* ADAPTVIZ_RESTRICT uc,
    const double* ADAPTVIZ_RESTRICT up, const double* ADAPTVIZ_RESTRICT vm,
    const double* ADAPTVIZ_RESTRICT vc, const double* ADAPTVIZ_RESTRICT vp,
    double* ADAPTVIZ_RESTRICT odh, double* ADAPTVIZ_RESTRICT odu,
    double* ADAPTVIZ_RESTRICT odv, double fcor, double su, double sv,
    double inv2dx, double nu_invdx2, double grav, double hbar, double dx) {
  for (std::size_t i = 1; i + 1 < nx; ++i) {
    const double ua = uc[i] + su;
    const double va = vc[i] + sv;

    const double h_x = (hc[i + 1] - hc[i - 1]) * inv2dx;
    const double h_y = (hp[i] - hm[i]) * inv2dx;
    const double u_x = (uc[i + 1] - uc[i - 1]) * inv2dx;
    const double u_y = (up[i] - um[i]) * inv2dx;
    const double v_x = (vc[i + 1] - vc[i - 1]) * inv2dx;
    const double v_y = (vp[i] - vm[i]) * inv2dx;

    const double lap_u =
        (uc[i + 1] + uc[i - 1] + up[i] + um[i] - 4.0 * uc[i]) * nu_invdx2;
    const double lap_v =
        (vc[i + 1] + vc[i - 1] + vp[i] + vm[i] - 4.0 * vc[i]) * nu_invdx2;
    const double lap_h =
        (hc[i + 1] + hc[i - 1] + hp[i] + hm[i] - 4.0 * hc[i]) * nu_invdx2;

    odu[i] = -ua * u_x - va * u_y + fcor * vc[i] - grav * h_x + lap_u;
    odv[i] = -ua * v_x - va * v_y - fcor * uc[i] - grav * h_y + lap_v;

    // Flux-form mass continuity: -div((H+h) * (u_total)).
    const double depth_e = hbar + 0.5 * (hc[i + 1] + hc[i]);
    const double depth_w = hbar + 0.5 * (hc[i - 1] + hc[i]);
    const double depth_n = hbar + 0.5 * (hp[i] + hc[i]);
    const double depth_s = hbar + 0.5 * (hm[i] + hc[i]);
    const double flux_e = depth_e * 0.5 * (uc[i + 1] + uc[i] + 2.0 * su);
    const double flux_w = depth_w * 0.5 * (uc[i - 1] + uc[i] + 2.0 * su);
    const double flux_n = depth_n * 0.5 * (vp[i] + vc[i] + 2.0 * sv);
    const double flux_s = depth_s * 0.5 * (vm[i] + vc[i] + 2.0 * sv);
    odh[i] = -((flux_e - flux_w) + (flux_n - flux_s)) / dx + lap_h;
  }
}

// RK3 stage update dst = src + a * tend over [lo, hi). All nine spans are
// pairwise disjoint (dst is a stage buffer distinct from the source state),
// so every pointer carries the no-alias promise.
inline void rk3_axpy(double* ADAPTVIZ_RESTRICT dh, double* ADAPTVIZ_RESTRICT du,
                     double* ADAPTVIZ_RESTRICT dv,
                     const double* ADAPTVIZ_RESTRICT h0,
                     const double* ADAPTVIZ_RESTRICT u0,
                     const double* ADAPTVIZ_RESTRICT v0,
                     const double* ADAPTVIZ_RESTRICT th,
                     const double* ADAPTVIZ_RESTRICT tu,
                     const double* ADAPTVIZ_RESTRICT tv, double a,
                     std::size_t lo, std::size_t hi) {
  for (std::size_t idx = lo; idx < hi; ++idx) {
    dh[idx] = h0[idx] + a * th[idx];
    du[idx] = u0[idx] + a * tu[idx];
    dv[idx] = v0[idx] + a * tv[idx];
  }
}

// Final RK3 stage: destination IS the source state, so the update runs in
// place (x += a*t rounds identically to x = x + a*t). Tendency spans stay
// restrict-qualified — they never alias the state.
inline void rk3_axpy_inplace(double* ADAPTVIZ_RESTRICT dh,
                             double* ADAPTVIZ_RESTRICT du,
                             double* ADAPTVIZ_RESTRICT dv,
                             const double* ADAPTVIZ_RESTRICT th,
                             const double* ADAPTVIZ_RESTRICT tu,
                             const double* ADAPTVIZ_RESTRICT tv, double a,
                             std::size_t lo, std::size_t hi) {
  for (std::size_t idx = lo; idx < hi; ++idx) {
    dh[idx] += a * th[idx];
    du[idx] += a * tu[idx];
    dv[idx] += a * tv[idx];
  }
}

}  // namespace

SwSolver::SwSolver(SwParams params) : params_(params) {
  if (params_.mean_depth <= 0 || params_.gravity <= 0 ||
      params_.diffusion_alpha < 0 || params_.sponge_width < 0) {
    throw std::invalid_argument("SwSolver: bad parameters");
  }
}

void SwSolver::compute_tendency(const DomainState& s, const SwForcing& f,
                                double dt, Tendency& out) const {
  // Histogram-only: three tendencies per step would flood the trace ring.
  static thread_local obs::HotHistogram tendency_hist("sim.tendency");
  obs::ScopedTimer span(tendency_hist);
  const GridSpec& g = s.grid;
  const std::size_t nx = g.nx();
  const std::size_t ny = g.ny();
  const double dx = g.dx_m();
  const double inv2dx = 1.0 / (2.0 * dx);
  const double nu = params_.diffusion_alpha * dx * dx / dt;
  const double nu_invdx2 = nu / (dx * dx);
  const double grav = params_.gravity;
  const double hbar = params_.mean_depth;
  const double su = f.steering_u;
  const double sv = f.steering_v;

  // Zero-filled scratch, reusing allocations even when the solver
  // alternates between parent- and nest-sized grids.
  out.dh.resize(nx, ny);
  out.du.resize(nx, ny);
  out.dv.resize(nx, ny);

  // Coriolis per row (varies with latitude: the beta effect is what makes
  // cyclones drift poleward-westward even in quiescent environments).
  std::vector<double> frow(ny);
  for (std::size_t j = 0; j < ny; ++j) frow[j] = coriolis(g.at(0, j).lat);

  // Sponge weight table rw[d] = (1/tau) * (1 - d/w)^2 — the exact per-point
  // expression of the scalar reference, evaluated once per distance.
  const int w = params_.sponge_width;
  const bool sponge_on = w > 0 && params_.sponge_tau_seconds > 0;
  std::vector<double> rw;
  if (sponge_on) {
    const double r0 = 1.0 / params_.sponge_tau_seconds;
    rw.resize(static_cast<std::size_t>(w));
    for (int d = 0; d < w; ++d) {
      const double wgt = 1.0 - static_cast<double>(d) / static_cast<double>(w);
      rw[static_cast<std::size_t>(d)] = r0 * wgt * wgt;
    }
  }

  // The original per-point loop, kept verbatim as the bitwise oracle and
  // bench baseline for the row kernels below.
  auto reference_rows = [&](std::size_t j_begin, std::size_t j_end) {
    for (std::size_t j = j_begin; j < j_end; ++j) {
      const double fcor = frow[j];
      for (std::size_t i = 1; i + 1 < nx; ++i) {
        const double ua = s.u(i, j) + f.steering_u;
        const double va = s.v(i, j) + f.steering_v;

        const double h_x = (s.h(i + 1, j) - s.h(i - 1, j)) * inv2dx;
        const double h_y = (s.h(i, j + 1) - s.h(i, j - 1)) * inv2dx;
        const double u_x = (s.u(i + 1, j) - s.u(i - 1, j)) * inv2dx;
        const double u_y = (s.u(i, j + 1) - s.u(i, j - 1)) * inv2dx;
        const double v_x = (s.v(i + 1, j) - s.v(i - 1, j)) * inv2dx;
        const double v_y = (s.v(i, j + 1) - s.v(i, j - 1)) * inv2dx;

        const double lap_u = (s.u(i + 1, j) + s.u(i - 1, j) + s.u(i, j + 1) +
                              s.u(i, j - 1) - 4.0 * s.u(i, j)) *
                             nu_invdx2;
        const double lap_v = (s.v(i + 1, j) + s.v(i - 1, j) + s.v(i, j + 1) +
                              s.v(i, j - 1) - 4.0 * s.v(i, j)) *
                             nu_invdx2;
        const double lap_h = (s.h(i + 1, j) + s.h(i - 1, j) + s.h(i, j + 1) +
                              s.h(i, j - 1) - 4.0 * s.h(i, j)) *
                             nu_invdx2;

        double du =
            -ua * u_x - va * u_y + fcor * s.v(i, j) - grav * h_x + lap_u;
        double dv =
            -ua * v_x - va * v_y - fcor * s.u(i, j) - grav * h_y + lap_v;

        // Flux-form mass continuity: -div((H+h) * (u_total)).
        const double depth_e = hbar + 0.5 * (s.h(i + 1, j) + s.h(i, j));
        const double depth_w = hbar + 0.5 * (s.h(i - 1, j) + s.h(i, j));
        const double depth_n = hbar + 0.5 * (s.h(i, j + 1) + s.h(i, j));
        const double depth_s = hbar + 0.5 * (s.h(i, j - 1) + s.h(i, j));
        const double flux_e =
            depth_e * 0.5 * (s.u(i + 1, j) + s.u(i, j) + 2.0 * f.steering_u);
        const double flux_w =
            depth_w * 0.5 * (s.u(i - 1, j) + s.u(i, j) + 2.0 * f.steering_u);
        const double flux_n =
            depth_n * 0.5 * (s.v(i, j + 1) + s.v(i, j) + 2.0 * f.steering_v);
        const double flux_s =
            depth_s * 0.5 * (s.v(i, j - 1) + s.v(i, j) + 2.0 * f.steering_v);
        double dh = -((flux_e - flux_w) + (flux_n - flux_s)) / dx + lap_h;

        if (f.mass_tendency != nullptr) dh += (*f.mass_tendency)(i, j);
        if (f.u_tendency != nullptr) du += (*f.u_tendency)(i, j);
        if (f.v_tendency != nullptr) dv += (*f.v_tendency)(i, j);
        if (f.relaxation != nullptr) {
          const double r = (*f.relaxation)(i, j);
          du -= r * s.u(i, j);
          dv -= r * s.v(i, j);
          dh -= r * s.h(i, j);
        }
        out.du(i, j) = du;
        out.dv(i, j) = dv;
        out.dh(i, j) = dh;
      }

      // Sponge: relax the outer rows toward rest, strongest at the boundary.
      if (sponge_on) {
        const double r0 = 1.0 / params_.sponge_tau_seconds;
        for (std::size_t i = 1; i + 1 < nx; ++i) {
          const std::size_t d =
              std::min(std::min(i, nx - 1 - i), std::min(j, ny - 1 - j));
          if (d >= static_cast<std::size_t>(w)) continue;
          const double wgt =
              1.0 - static_cast<double>(d) / static_cast<double>(w);
          const double r = r0 * wgt * wgt;
          out.du(i, j) -= r * s.u(i, j);
          out.dv(i, j) -= r * s.v(i, j);
          out.dh(i, j) -= r * s.h(i, j);
        }
      }
    }
  };  // reference_rows

  // Row-kernel path: per row, a branch-free interior stencil over raw
  // spans, then hoisted passes for whichever optional terms are active,
  // then the sponge as precomputed boundary bands.
  auto row_kernel_rows = [&](std::size_t j_begin, std::size_t j_end) {
    const std::size_t last = nx - 1;
    for (std::size_t j = j_begin; j < j_end; ++j) {
      const double fcor = frow[j];
      const double* hm = s.h.row(j - 1);
      const double* hc = s.h.row(j);
      const double* hp = s.h.row(j + 1);
      const double* um = s.u.row(j - 1);
      const double* uc = s.u.row(j);
      const double* up = s.u.row(j + 1);
      const double* vm = s.v.row(j - 1);
      const double* vc = s.v.row(j);
      const double* vp = s.v.row(j + 1);
      double* ADAPTVIZ_RESTRICT odh = out.dh.row(j);
      double* ADAPTVIZ_RESTRICT odu = out.du.row(j);
      double* ADAPTVIZ_RESTRICT odv = out.dv.row(j);

      stencil_interior_row(nx, hm, hc, hp, um, uc, up, vm, vc, vp, odh, odu,
                           odv, fcor, su, sv, inv2dx, nu_invdx2, grav, hbar,
                           dx);

      // Optional terms, one hoisted elementwise pass each, in the same
      // accumulation order the reference applies per point.
      if (f.mass_tendency != nullptr) {
        const double* q = f.mass_tendency->row(j);
        for (std::size_t i = 1; i < last; ++i) odh[i] += q[i];
      }
      if (f.u_tendency != nullptr) {
        const double* fu = f.u_tendency->row(j);
        for (std::size_t i = 1; i < last; ++i) odu[i] += fu[i];
      }
      if (f.v_tendency != nullptr) {
        const double* fv = f.v_tendency->row(j);
        for (std::size_t i = 1; i < last; ++i) odv[i] += fv[i];
      }
      if (f.relaxation != nullptr) {
        const double* r = f.relaxation->row(j);
        for (std::size_t i = 1; i < last; ++i) {
          odu[i] -= r[i] * uc[i];
          odv[i] -= r[i] * vc[i];
          odh[i] -= r[i] * hc[i];
        }
      }

      if (sponge_on) {
        const std::size_t W = static_cast<std::size_t>(w);
        const std::size_t jd = std::min(j, ny - 1 - j);
        const std::size_t b = std::min(jd, W);
        if (last >= 2 * W + 1) {
          // Wide row: the sponge decomposes into a left band where the
          // boundary distance is i, a constant-weight middle (only when
          // the row itself sits inside the sponge), and a mirrored right
          // band — no per-point distance test.
          for (std::size_t i = 1; i < b; ++i) {
            const double r = rw[i];
            odu[i] -= r * uc[i];
            odv[i] -= r * vc[i];
            odh[i] -= r * hc[i];
          }
          if (jd < W) {
            const double r = rw[jd];
            for (std::size_t i = b; i <= last - b; ++i) {
              odu[i] -= r * uc[i];
              odv[i] -= r * vc[i];
              odh[i] -= r * hc[i];
            }
          }
          for (std::size_t i = last - b + 1; i < last; ++i) {
            const double r = rw[last - i];
            odu[i] -= r * uc[i];
            odv[i] -= r * vc[i];
            odh[i] -= r * hc[i];
          }
        } else {
          // Narrow grid: the bands would overlap, fall back to the
          // per-point distance computation (same weights via the table).
          for (std::size_t i = 1; i < last; ++i) {
            const std::size_t d = std::min(std::min(i, last - i), jd);
            if (d >= W) continue;
            const double r = rw[d];
            odu[i] -= r * uc[i];
            odv[i] -= r * vc[i];
            odh[i] -= r * hc[i];
          }
        }
      }
    }
  };  // row_kernel_rows

  if (params_.kernel == SwKernel::kScalarReference) {
    dispatch_rows(params_, 1, ny - 1, reference_rows);
  } else {
    dispatch_rows(params_, 1, ny - 1, row_kernel_rows);
  }
}

void SwSolver::step(DomainState& state, double dt,
                    const SwForcing& forcing) const {
  if (dt <= 0) throw std::invalid_argument("SwSolver::step: dt must be > 0");
  static thread_local obs::HotHistogram step_hist("sim.step");
  static thread_local obs::HotCounter step_count("sim.steps");
  obs::ScopedSpan span("sim.step", step_hist);
  if (obs::Counter* c = step_count.resolve(obs::current())) c->add(1);
  const std::size_t n = state.h.size();

  // WRF ARW RK3: phi* = phi + dt/3 F(phi); phi** = phi + dt/2 F(phi*);
  // phi^{n+1} = phi + dt F(phi**).
  Tendency& tend = tend_scratch_;
  // Reuse the stage buffers across steps: copy-assign lands in the already
  // allocated fields instead of allocating three grids per step.
  if (stage_scratch_) {
    *stage_scratch_ = state;
  } else {
    stage_scratch_.emplace(state);
  }
  DomainState& stage = *stage_scratch_;

  const double frac[3] = {dt / 3.0, dt / 2.0, dt};
  for (int k = 0; k < 3; ++k) {
    compute_tendency(stage, forcing, dt, tend);
    const double a = frac[k];
    // The first two stages write into the disjoint `stage` buffers (full
    // no-alias kernel); the last stage updates `state` in place.
    const double* th = tend.dh.data().data();
    const double* tu = tend.du.data().data();
    const double* tv = tend.dv.data().data();
    static thread_local obs::HotHistogram update_hist("sim.update");
    obs::ScopedTimer update_span(update_hist);
    if (k == 2) {
      double* dh = state.h.data().data();
      double* du = state.u.data().data();
      double* dv = state.v.data().data();
      dispatch_rows(params_, 0, n, [=](std::size_t lo, std::size_t hi) {
        rk3_axpy_inplace(dh, du, dv, th, tu, tv, a, lo, hi);
      });
    } else {
      double* dh = stage.h.data().data();
      double* du = stage.u.data().data();
      double* dv = stage.v.data().data();
      const double* h0 = state.h.data().data();
      const double* u0 = state.u.data().data();
      const double* v0 = state.v.data().data();
      dispatch_rows(params_, 0, n, [=](std::size_t lo, std::size_t hi) {
        rk3_axpy(dh, du, dv, h0, u0, v0, th, tu, tv, a, lo, hi);
      });
    }
  }
}

}  // namespace adaptviz
