#include "weather/physics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaptviz {

CyclonePhysics::CyclonePhysics(PhysicsConfig config, double initial_deficit_hpa,
                               LatLon initial_center)
    : config_(config), deficit_(initial_deficit_hpa), center_(initial_center) {
  if (initial_deficit_hpa <= 0 ||
      initial_deficit_hpa >= config.deficit_max_hpa) {
    throw std::invalid_argument("CyclonePhysics: bad initial deficit");
  }
}

void CyclonePhysics::advance(double dt_seconds, double steering_u,
                             double steering_v, LatLon diagnosed_eye) {
  const double dt_h = dt_seconds / 3600.0;

  // --- Motion: advect the centre with the steering current, nudged toward
  // --- the field-diagnosed eye (tau ~ 6 h) so dynamics-driven displacement
  // --- (e.g. beta drift resolved by the grid) feeds back.
  const double m_per_deg_lat = kKmPerDegree * 1000.0;
  const double coslat = std::cos(center_.lat * 3.14159265 / 180.0);
  center_.lat += steering_v * dt_seconds / m_per_deg_lat;
  center_.lon += steering_u * dt_seconds / (m_per_deg_lat * coslat);
  const double pull = dt_h / 6.0;
  if (distance_km(center_, diagnosed_eye) < 400.0) {
    center_.lat += pull * (diagnosed_eye.lat - center_.lat);
    center_.lon += pull * (diagnosed_eye.lon - center_.lon);
  }

  // --- Intensity ODE.
  const double land = land_fraction(center_);
  const double ocean = 1.0 - land;
  const double sst = sea_surface_temp(center_);
  const double s = std::clamp((sst - config_.sst_min_c) / 3.0, 0.0, 1.0);

  const double growth = config_.k_intensify_per_hour * s * ocean * deficit_ *
                        (1.0 - deficit_ / config_.deficit_max_hpa);
  const double decay = land * deficit_ / config_.land_decay_tau_hours;
  deficit_ += dt_h * (growth - decay);
  deficit_ = std::clamp(deficit_, 0.5, config_.deficit_max_hpa);
}

HollandVortex CyclonePhysics::target_vortex(double resolution_km) const {
  const double r_phys =
      std::max(config_.r_floor_km,
               config_.r_max0_km - config_.r_shrink_km_per_hpa * deficit_);
  const double r_resolvable = 2.2 * resolution_km;
  return HollandVortex{
      .center = center_,
      .deficit_hpa = deficit_,
      .r_max_km = std::max(r_phys, r_resolvable),
      .b = config_.holland_b,
  };
}

void CyclonePhysics::build_forcing(const DomainState& state,
                                   const Field2D& land,
                                   Field2D& mass_tendency,
                                   Field2D& u_tendency, Field2D& v_tendency,
                                   Field2D& relaxation) const {
  const GridSpec& g = state.grid;
  if (land.nx() != g.nx() || land.ny() != g.ny()) {
    throw std::invalid_argument("build_forcing: land mask shape mismatch");
  }
  if (mass_tendency.nx() != g.nx() || mass_tendency.ny() != g.ny()) {
    mass_tendency = Field2D(g.nx(), g.ny());
    u_tendency = Field2D(g.nx(), g.ny());
    v_tendency = Field2D(g.nx(), g.ny());
    relaxation = Field2D(g.nx(), g.ny());
  }

  const HollandVortex target = target_vortex(g.resolution_km());
  const double inv_tau = 1.0 / (config_.mass_relax_tau_hours * 3600.0);
  const double inv_tau_fric = 1.0 / (config_.land_friction_tau_hours * 3600.0);
  const double inv_tau_nudge = 1.0 / (config_.nudge_tau_hours * 3600.0);
  const double storm_radius = 5.0 * target.r_max_km;  // nudge-free zone
  const double sigma2 = 2.0 * 9.0 * target.r_max_km * target.r_max_km;
  const double fcor = coriolis(center_.lat);
  const double deg2rad = 3.14159265358979 / 180.0;

  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const LatLon p = g.at(i, j);
      const double r = distance_km(p, center_);

      // Relaxation toward the balanced Holland target (height and winds
      // together), confined near the storm.
      const double w = std::exp(-(r * r) / sigma2);
      double q = 0.0;
      double fu = 0.0;
      double fv = 0.0;
      if (w > 1e-4) {
        const double h_target = target.height_anomaly_m(r);
        q = w * (h_target - state.h(i, j)) * inv_tau;
        double ut = 0.0;
        double vt = 0.0;
        if (r > 1.0) {
          const double vt_mag = target.balanced_tangential_wind(r, fcor);
          const double coslat = std::cos(0.5 * (p.lat + center_.lat) * deg2rad);
          const double dx = (p.lon - center_.lon) * kKmPerDegree * coslat;
          const double dy = (p.lat - center_.lat) * kKmPerDegree;
          ut = vt_mag * (-dy / r);
          vt = vt_mag * (dx / r);
        }
        fu = w * (ut - state.u(i, j)) * inv_tau;
        fv = w * (vt - state.v(i, j)) * inv_tau;
      }
      mass_tendency(i, j) = q;
      u_tendency(i, j) = fu;
      v_tendency(i, j) = fv;

      // Land friction plus far-field analysis nudging.
      const double w_storm =
          std::exp(-(r * r) / (2.0 * storm_radius * storm_radius));
      relaxation(i, j) =
          land(i, j) * inv_tau_fric + (1.0 - w_storm) * inv_tau_nudge;
    }
  }
}

}  // namespace adaptviz
