#include "weather/nest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/interpolation.hpp"

namespace adaptviz {
namespace {

// Samples all three prognostic fields of `src` at a geographic point.
void sample_state(const DomainState& src, LatLon p, double& h, double& u,
                  double& v) {
  const GridSpec& g = src.grid;
  const double x = g.x_of_lon(p.lon);
  const double y = g.y_of_lat(p.lat);
  h = bicubic(src.h.data(), g.nx(), g.ny(), x, y);
  u = bilinear(src.u.data(), g.nx(), g.ny(), x, y);
  v = bilinear(src.v.data(), g.nx(), g.ny(), x, y);
}

}  // namespace

GridSpec NestDomain::make_grid(const GridSpec& parent_grid, LatLon center,
                               double extent_deg, double resolution_km) {
  const double margin = 2.0 * parent_grid.resolution_km() / kKmPerDegree;
  const double half = extent_deg / 2.0;
  const double lon_min = parent_grid.lon0() + margin;
  const double lon_max =
      parent_grid.lon0() + parent_grid.extent_lon() - margin - extent_deg;
  const double lat_min = parent_grid.lat0() + margin;
  const double lat_max =
      parent_grid.lat0() + parent_grid.extent_lat() - margin - extent_deg;
  if (lon_max < lon_min || lat_max < lat_min) {
    throw std::invalid_argument("NestDomain: nest larger than parent");
  }
  const double lon0 = std::clamp(center.lon - half, lon_min, lon_max);
  const double lat0 = std::clamp(center.lat - half, lat_min, lat_max);
  return GridSpec(lon0, lat0, extent_deg, extent_deg, resolution_km);
}

NestDomain::NestDomain(const DomainState& parent, LatLon center,
                       double extent_deg)
    : state_(make_grid(parent.grid, center, extent_deg,
                       parent.grid.resolution_km() / kNestRatio)),
      extent_deg_(extent_deg) {
  fill_from(parent);
}

LatLon NestDomain::center() const {
  const GridSpec& g = state_.grid;
  return LatLon{g.lat0() + g.extent_lat() / 2.0,
                g.lon0() + g.extent_lon() / 2.0};
}

void NestDomain::fill_from(const DomainState& src) {
  const GridSpec& g = state_.grid;
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      sample_state(src, g.at(i, j), state_.h(i, j), state_.u(i, j),
                   state_.v(i, j));
    }
  }
}

void NestDomain::apply_boundary(const DomainState& parent, int width) {
  const GridSpec& g = state_.grid;
  const std::size_t w = static_cast<std::size_t>(std::max(1, width));
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const std::size_t d = std::min(std::min(i, g.nx() - 1 - i),
                                     std::min(j, g.ny() - 1 - j));
      if (d >= w) {
        // Interior: skip the whole middle of the row quickly.
        if (j >= w && j < g.ny() - w && i == w) {
          i = g.nx() - w - 1;
        }
        continue;
      }
      double h, u, v;
      sample_state(parent, g.at(i, j), h, u, v);
      // Blend: pure parent at the edge, pure nest at depth w.
      const double f = static_cast<double>(d) / static_cast<double>(w);
      state_.h(i, j) = f * state_.h(i, j) + (1.0 - f) * h;
      state_.u(i, j) = f * state_.u(i, j) + (1.0 - f) * u;
      state_.v(i, j) = f * state_.v(i, j) + (1.0 - f) * v;
    }
  }
}

void NestDomain::feedback(DomainState& parent, int exclude_width) const {
  const GridSpec& ng = state_.grid;
  const GridSpec& pg = parent.grid;
  // Interior box of the nest in geographic coordinates.
  const double pad =
      static_cast<double>(exclude_width) * ng.resolution_km() / kKmPerDegree;
  const double lon_lo = ng.lon0() + pad;
  const double lon_hi = ng.lon0() + ng.extent_lon() - pad;
  const double lat_lo = ng.lat0() + pad;
  const double lat_hi = ng.lat0() + ng.extent_lat() - pad;

  for (std::size_t j = 1; j + 1 < pg.ny(); ++j) {
    for (std::size_t i = 1; i + 1 < pg.nx(); ++i) {
      const LatLon p = pg.at(i, j);
      if (p.lon < lon_lo || p.lon > lon_hi || p.lat < lat_lo ||
          p.lat > lat_hi) {
        continue;
      }
      // Restriction: mean of a (ratio x ratio) block of nest samples around
      // the parent point — conservative-ish without bookkeeping exact cells.
      double h = 0.0;
      double u = 0.0;
      double v = 0.0;
      const double step = ng.resolution_km() / kKmPerDegree;
      int count = 0;
      for (int jj = -1; jj <= 1; ++jj) {
        for (int ii = -1; ii <= 1; ++ii) {
          const double x =
              ng.x_of_lon(p.lon + static_cast<double>(ii) * step);
          const double y =
              ng.y_of_lat(p.lat + static_cast<double>(jj) * step);
          h += state_.h.sample(x, y);
          u += state_.u.sample(x, y);
          v += state_.v.sample(x, y);
          ++count;
        }
      }
      parent.h(i, j) = h / count;
      parent.u(i, j) = u / count;
      parent.v(i, j) = v / count;
    }
  }
}

bool NestDomain::needs_recenter(LatLon eye, double threshold_deg) const {
  const LatLon c = center();
  return std::fabs(eye.lat - c.lat) > threshold_deg ||
         std::fabs(eye.lon - c.lon) > threshold_deg;
}

void NestDomain::recenter(const DomainState& parent, LatLon eye) {
  DomainState old = std::move(state_);
  state_ = DomainState(
      make_grid(parent.grid, eye, extent_deg_, old.grid.resolution_km()));
  const GridSpec& g = state_.grid;
  const GridSpec& og = old.grid;
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const LatLon p = g.at(i, j);
      // Prefer fine data where the old nest covered this point (away from
      // its boundary band), otherwise interpolate from the parent.
      const double margin = 3.0 * og.resolution_km() / kKmPerDegree;
      const bool in_old = p.lon > og.lon0() + margin &&
                          p.lon < og.lon0() + og.extent_lon() - margin &&
                          p.lat > og.lat0() + margin &&
                          p.lat < og.lat0() + og.extent_lat() - margin;
      sample_state(in_old ? old : parent, p, state_.h(i, j), state_.u(i, j),
                   state_.v(i, j));
    }
  }
}

void NestDomain::restore_state(DomainState s) {
  state_ = std::move(s);
}

}  // namespace adaptviz
