#include "weather/tracker.hpp"

#include <cmath>
#include <stdexcept>

namespace adaptviz {

CycloneTracker::CycloneTracker(SimSeconds record_interval)
    : record_interval_(record_interval) {}

void CycloneTracker::update(const DomainState& state, SimSeconds now) {
  const GridSpec& g = state.grid;
  // One smoothing pass knocks down grid-scale noise without displacing the
  // minimum of a resolved vortex.
  const Field2D h = smooth(state.h, 1);
  std::size_t bi = 0;
  std::size_t bj = 0;
  double best = 1e300;
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      if (h(i, j) < best) {
        best = h(i, j);
        bi = i;
        bj = j;
      }
    }
  }
  eye_ = g.at(bi, bj);
  min_pressure_ = kEnvPressureHpa + kHpaPerMetre * best;
  if (min_pressure_ < lowest_ever_) lowest_ever_ = min_pressure_;

  max_wind_ = 0.0;
  for (std::size_t k = 0; k < state.u.size(); ++k) {
    const double s = state.u.data()[k] * state.u.data()[k] +
                     state.v.data()[k] * state.v.data()[k];
    if (s > max_wind_) max_wind_ = s;
  }
  max_wind_ = std::sqrt(max_wind_);

  if (track_.empty() || now - last_record_ >= record_interval_) {
    track_.push_back(TrackPoint{now, eye_, min_pressure_, max_wind_});
    last_record_ = now;
  }
}

void CycloneTracker::restore(LatLon eye, double min_pressure,
                             double lowest_ever) {
  eye_ = eye;
  min_pressure_ = min_pressure;
  lowest_ever_ = lowest_ever;
}

void CycloneTracker::restore_track(std::vector<TrackPoint> points) {
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].time < points[i - 1].time) {
      throw std::invalid_argument("restore_track: points out of order");
    }
  }
  track_ = std::move(points);
  if (!track_.empty()) last_record_ = track_.back().time;
}

ResolutionLadder ResolutionLadder::table3() {
  return ResolutionLadder({{995.0, 24.0},
                           {994.0, 21.0},
                           {992.0, 18.0},
                           {990.0, 15.0},
                           {988.0, 12.0},
                           {986.0, 10.0}});
}

ResolutionLadder::ResolutionLadder(std::vector<Rung> rungs)
    : rungs_(std::move(rungs)) {
  if (rungs_.empty()) {
    throw std::invalid_argument("ResolutionLadder: no rungs");
  }
  for (std::size_t i = 1; i < rungs_.size(); ++i) {
    if (rungs_[i].pressure_hpa >= rungs_[i - 1].pressure_hpa ||
        rungs_[i].resolution_km >= rungs_[i - 1].resolution_km) {
      throw std::invalid_argument(
          "ResolutionLadder: rungs must strictly decrease");
    }
  }
  for (const Rung& r : rungs_) {
    if (r.resolution_km <= 0) {
      throw std::invalid_argument("ResolutionLadder: non-positive resolution");
    }
  }
}

double ResolutionLadder::resolution_for(double lowest_pressure_hpa,
                                        double base_resolution_km) const {
  double res = base_resolution_km;
  for (const Rung& r : rungs_) {
    if (lowest_pressure_hpa < r.pressure_hpa) res = r.resolution_km;
  }
  return res;
}

double ResolutionLadder::spawn_pressure_hpa() const {
  return rungs_.front().pressure_hpa;
}

}  // namespace adaptviz
