#include "weather/vortex.hpp"

#include <algorithm>
#include <cmath>

namespace adaptviz {

double distance_km(LatLon a, LatLon b) {
  const double dy = (a.lat - b.lat) * kKmPerDegree;
  const double mean_lat = 0.5 * (a.lat + b.lat) * 3.14159265358979 / 180.0;
  const double dx = (a.lon - b.lon) * kKmPerDegree * std::cos(mean_lat);
  return std::hypot(dx, dy);
}

double HollandVortex::pressure_anomaly_hpa(double r_km) const {
  // Holland: p(r) = pc + deficit * exp(-(Rm/r)^B), so the anomaly relative
  // to the environment is -deficit * (1 - exp(-(Rm/r)^B)): full deficit at
  // the centre, zero far away.
  const double r = std::max(r_km, 1e-3);
  return -deficit_hpa * (1.0 - std::exp(-std::pow(r_max_km / r, b)));
}

double HollandVortex::height_anomaly_m(double r_km) const {
  return pressure_anomaly_hpa(r_km) / kHpaPerMetre;
}

double HollandVortex::balanced_tangential_wind(double r_km, double f) const {
  // d(h)/dr of the Holland height profile, analytically:
  //   h(r) = -D * exp(-(Rm/r)^B)  with D = deficit/kHpaPerMetre
  //   dh/dr = -D * exp(-(Rm/r)^B) * B * Rm^B / r^(B+1)
  const double r_m = std::max(r_km, 1.0) * 1000.0;
  const double rm_m = r_max_km * 1000.0;
  const double d_m = deficit_hpa / kHpaPerMetre;
  const double x = std::pow(rm_m / r_m, b);
  const double dhdr = d_m * std::exp(-x) * b * x / r_m;  // positive outward
  const double g = 9.81;
  const double fr2 = 0.5 * std::fabs(f) * r_m;
  const double v = -fr2 + std::sqrt(fr2 * fr2 + g * r_m * dhdr);
  return v;
}

void HollandVortex::deposit(DomainState& state) const {
  const GridSpec& grid = state.grid;
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      const LatLon p = grid.at(i, j);
      const double r = distance_km(p, center);
      if (r > 12.0 * r_max_km) continue;  // negligible beyond
      state.h(i, j) += height_anomaly_m(r);
      const double f = coriolis(center.lat);
      const double vt = balanced_tangential_wind(r, f);
      if (r > 1.0) {
        // Unit tangential vector (counterclockwise = cyclonic, NH).
        const double mean_lat = 0.5 * (p.lat + center.lat) * 3.14159265 / 180.0;
        const double dx = (p.lon - center.lon) * kKmPerDegree *
                          std::cos(mean_lat);
        const double dy = (p.lat - center.lat) * kKmPerDegree;
        state.u(i, j) += vt * (-dy / r);
        state.v(i, j) += vt * (dx / r);
      }
    }
  }
}

}  // namespace adaptviz
