#include "weather/track_metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/calendar.hpp"
#include "weather/vortex.hpp"

namespace adaptviz {

TrackPoint interpolate_track(const std::vector<TrackPoint>& track,
                             SimSeconds t) {
  if (track.empty()) {
    throw std::invalid_argument("interpolate_track: empty track");
  }
  if (t <= track.front().time) return track.front();
  if (t >= track.back().time) return track.back();
  const auto it = std::lower_bound(
      track.begin(), track.end(), t,
      [](const TrackPoint& p, SimSeconds when) { return p.time < when; });
  const TrackPoint& hi = *it;
  const TrackPoint& lo = *(it - 1);
  const double span = (hi.time - lo.time).seconds();
  const double f = span > 0 ? (t - lo.time).seconds() / span : 0.0;
  TrackPoint out;
  out.time = t;
  out.eye.lat = lo.eye.lat + f * (hi.eye.lat - lo.eye.lat);
  out.eye.lon = lo.eye.lon + f * (hi.eye.lon - lo.eye.lon);
  out.min_pressure_hpa =
      lo.min_pressure_hpa + f * (hi.min_pressure_hpa - lo.min_pressure_hpa);
  out.max_wind_ms = lo.max_wind_ms + f * (hi.max_wind_ms - lo.max_wind_ms);
  return out;
}

std::vector<TrackError> verify_track(
    const std::vector<TrackPoint>& simulated,
    const std::vector<TrackPoint>& reference) {
  std::vector<TrackError> out;
  if (simulated.empty()) return out;
  const SimSeconds begin = simulated.front().time;
  const SimSeconds end = simulated.back().time;
  for (const TrackPoint& ref : reference) {
    if (ref.time < begin || ref.time > end) continue;
    const TrackPoint sim = interpolate_track(simulated, ref.time);
    out.push_back(TrackError{
        ref.time, distance_km(sim.eye, ref.eye),
        sim.min_pressure_hpa - ref.min_pressure_hpa});
  }
  return out;
}

double mean_position_error_km(const std::vector<TrackError>& errors) {
  if (errors.empty()) {
    throw std::invalid_argument("mean_position_error_km: no matched points");
  }
  double s = 0.0;
  for (const TrackError& e : errors) s += e.position_error_km;
  return s / static_cast<double>(errors.size());
}

std::vector<TrackPoint> aila_reference_track() {
  const CalendarEpoch epoch = CalendarEpoch::aila_start();
  // (time, lat, lon, central pressure): genesis in the central Bay, steady
  // northward motion along ~88.5E, deepening into a severe cyclonic storm,
  // landfall near the head of the Bay late on 24/25 May, then inland toward
  // the Darjeeling hills.
  return {
      TrackPoint{epoch.at(22, 18), LatLon{13.8, 88.5}, 1002.0, 12.0},
      TrackPoint{epoch.at(23, 6), LatLon{14.8, 88.4}, 996.0, 16.0},
      TrackPoint{epoch.at(23, 18), LatLon{16.2, 88.3}, 990.0, 20.0},
      TrackPoint{epoch.at(24, 6), LatLon{17.8, 88.3}, 986.0, 24.0},
      TrackPoint{epoch.at(24, 18), LatLon{19.8, 88.4}, 982.0, 28.0},
      TrackPoint{epoch.at(25, 6), LatLon{21.9, 88.5}, 984.0, 25.0},
  };
}

}  // namespace adaptviz
