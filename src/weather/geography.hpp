// Coarse geography of the Bay of Bengal region.
//
// The physics needs to know ocean from land: tropical cyclones intensify
// over warm ocean and decay after landfall (Aila formed over the central Bay
// of Bengal, made landfall near Kolkata and dissipated in the Darjeeling
// hills). A polygonal coastline at this fidelity is enough — the framework
// never needs shoreline detail, only an over-land fraction for the decay
// term and rendering.
#pragma once

#include "weather/grid.hpp"

namespace adaptviz {

/// Fraction of land at a point, in [0, 1]; smooth ramp across the coast so
/// the decay forcing has no step discontinuity.
double land_fraction(LatLon p);

/// True when the point is (mostly) land.
inline bool is_land(LatLon p) { return land_fraction(p) > 0.5; }

/// Sea-surface temperature proxy (degrees C) driving intensification: warm
/// (30-31 C) in the central Bay, cooling toward higher latitudes.
double sea_surface_temp(LatLon p);

/// Rasterizes land_fraction onto a grid (used by the model and renderer).
Field2D land_mask(const GridSpec& grid);

}  // namespace adaptviz
