// Prognostic state of one model domain (parent or nest).
//
// The dynamical core is a single-layer shallow-water system on a beta
// plane — the classic reduced model of large-scale atmospheric flow. `h` is
// the height *anomaly* (m) about the mean equivalent depth; (u, v) are the
// horizontal wind components (m/s). Surface pressure is diagnosed linearly
// from h (see kHpaPerMetre), which is how the tracker, the nest trigger and
// the Table III resolution ladder read storm intensity off the fields.
#pragma once

#include "util/units.hpp"
#include "weather/grid.hpp"

namespace adaptviz {

/// Mean equivalent depth of the shallow-water layer (m). Gravity-wave speed
/// is sqrt(g*H) ~ 63 m/s, comfortably stable at dt = 6*dx (WRF's rule).
inline constexpr double kMeanDepthM = 400.0;

/// Diagnostic mapping from height anomaly to surface-pressure anomaly.
/// -220 m of layer depression corresponds to a 44 hPa deficit — a severe
/// cyclonic storm like Aila at peak.
inline constexpr double kHpaPerMetre = 0.2;

/// Undisturbed environmental surface pressure (hPa).
inline constexpr double kEnvPressureHpa = 1010.0;

struct DomainState {
  GridSpec grid;
  Field2D h;  // height anomaly (m)
  Field2D u;  // zonal wind (m/s)
  Field2D v;  // meridional wind (m/s)

  DomainState() = default;
  explicit DomainState(const GridSpec& g)
      : grid(g), h(g.nx(), g.ny()), u(g.nx(), g.ny()), v(g.nx(), g.ny()) {}

  /// Surface pressure (hPa) at a grid point.
  [[nodiscard]] double pressure_hpa(std::size_t i, std::size_t j) const {
    return kEnvPressureHpa + kHpaPerMetre * h(i, j);
  }

  /// Full diagnostic pressure field (hPa).
  [[nodiscard]] Field2D pressure_field() const;

  /// Wind speed magnitude field (m/s).
  [[nodiscard]] Field2D wind_speed() const;

  /// Relative vorticity (1/s) by centered differences.
  [[nodiscard]] Field2D vorticity() const;
};

/// Coriolis parameter f = 2*Omega*sin(lat) (1/s).
double coriolis(double lat_deg);

}  // namespace adaptviz
