#include "weather/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/interpolation.hpp"

namespace adaptviz {

GridSpec::GridSpec(double lon0, double lat0, double extent_lon_deg,
                   double extent_lat_deg, double resolution_km)
    : lon0_(lon0),
      lat0_(lat0),
      ext_lon_(extent_lon_deg),
      ext_lat_(extent_lat_deg),
      res_km_(resolution_km) {
  if (extent_lon_deg <= 0 || extent_lat_deg <= 0 || resolution_km <= 0) {
    throw std::invalid_argument("GridSpec: extents and resolution must be > 0");
  }
  const double res_deg = resolution_km / kKmPerDegree;
  nx_ = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(extent_lon_deg / res_deg)) + 1);
  ny_ = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(extent_lat_deg / res_deg)) + 1);
}

LatLon GridSpec::at(std::size_t i, std::size_t j) const {
  const double fx = static_cast<double>(i) / static_cast<double>(nx_ - 1);
  const double fy = static_cast<double>(j) / static_cast<double>(ny_ - 1);
  return LatLon{lat0_ + fy * ext_lat_, lon0_ + fx * ext_lon_};
}

double GridSpec::x_of_lon(double lon) const {
  return (lon - lon0_) / ext_lon_ * static_cast<double>(nx_ - 1);
}

double GridSpec::y_of_lat(double lat) const {
  return (lat - lat0_) / ext_lat_ * static_cast<double>(ny_ - 1);
}

bool GridSpec::contains(LatLon p) const {
  return p.lon >= lon0_ && p.lon <= lon0_ + ext_lon_ && p.lat >= lat0_ &&
         p.lat <= lat0_ + ext_lat_;
}

Field2D::Field2D(std::size_t nx, std::size_t ny, double fill)
    : nx_(nx), ny_(ny), data_(nx * ny, fill) {
  if (nx == 0 || ny == 0) throw std::invalid_argument("Field2D: empty");
}

void Field2D::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

double Field2D::min() const {
  return *std::min_element(data_.begin(), data_.end());
}

double Field2D::max() const {
  return *std::max_element(data_.begin(), data_.end());
}

double Field2D::mean() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s / static_cast<double>(data_.size());
}

double Field2D::sample(double x, double y) const {
  return bilinear(data_, nx_, ny_, x, y);
}

Field2D smooth(const Field2D& f, int passes) {
  Field2D cur = f;
  Field2D next(f.nx(), f.ny());
  for (int p = 0; p < passes; ++p) {
    for (std::size_t j = 0; j < f.ny(); ++j) {
      for (std::size_t i = 0; i < f.nx(); ++i) {
        const std::size_t im = i > 0 ? i - 1 : i;
        const std::size_t ip = i + 1 < f.nx() ? i + 1 : i;
        const std::size_t jm = j > 0 ? j - 1 : j;
        const std::size_t jp = j + 1 < f.ny() ? j + 1 : j;
        next(i, j) = 0.2 * (cur(i, j) + cur(im, j) + cur(ip, j) + cur(i, jm) +
                            cur(i, jp));
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace adaptviz
