// Synthetic meteorological analysis ("FNL") and WPS-like preprocessing.
//
// The paper initializes WRF from 6-hourly 1-degree FNL GRIB analyses pulled
// from the CISL Research Data Archive and runs the WRF Preprocessing System
// (WPS) to interpolate them onto the model domain. Offline we cannot fetch
// FNL, so SyntheticAnalysis builds the equivalent: coarse 1-degree fields
// containing (a) the large-scale monsoon steering flow over the Bay of
// Bengal, (b) the initial Aila depression as a Holland bogus vortex, and
// (c) small correlated perturbations standing in for analysis uncertainty.
// `preprocess` is the WPS stand-in: it interpolates the coarse analysis onto
// an arbitrary model grid. The substitution preserves the code path the
// framework exercises — coarse input -> interpolation -> model-grid initial
// state (finer nests re-interpolate, as the paper notes WRF "needs input
// data at a finer resolution" per refinement level).
#pragma once

#include <cstdint>

#include "weather/grid.hpp"
#include "weather/state.hpp"
#include "weather/vortex.hpp"

namespace adaptviz {

/// Time-varying large-scale steering current (m/s) advecting the storm.
/// Aila tracked almost due north along ~88E: weak south-southeasterly
/// steering early, strengthening and veering slightly east of north late
/// (towards the Darjeeling hills).
struct SteeringProfile {
  /// Components at simulated time t since the analysis epoch.
  [[nodiscard]] double u(SimSeconds t) const;
  [[nodiscard]] double v(SimSeconds t) const;

  double u_early = -0.4;
  double v_early = 3.2;
  double u_late = 0.6;
  double v_late = 5.2;
  /// Centre and width (hours) of the early->late transition.
  double transition_hour = 30.0;
  double transition_width_hours = 8.0;
};

struct AnalysisConfig {
  /// Initial depression as analyzed at the epoch (22-May-2009 18:00 UTC:
  /// a ~998 hPa low over the central Bay of Bengal near 14N 88.5E).
  HollandVortex initial_vortex{
      .center = LatLon{14.0, 88.5},
      .deficit_hpa = 9.0,  // ~1001 hPa depression at the analysis epoch
      .r_max_km = 90.0,
      .b = 1.4,
  };
  SteeringProfile steering;
  /// Amplitude (m) of correlated height perturbations ("analysis noise").
  double perturbation_m = 1.5;
  std::uint64_t seed = 20090522;
};

class SyntheticAnalysis {
 public:
  /// Builds the 1-degree analysis over the given geographic box.
  static SyntheticAnalysis generate(double lon0, double lat0,
                                    double extent_lon_deg,
                                    double extent_lat_deg,
                                    const AnalysisConfig& config);

  [[nodiscard]] const GridSpec& grid() const { return coarse_.grid; }
  [[nodiscard]] const DomainState& coarse_state() const { return coarse_; }
  [[nodiscard]] const AnalysisConfig& config() const { return config_; }

 private:
  DomainState coarse_;
  AnalysisConfig config_;
};

/// WPS stand-in: interpolates the coarse analysis onto `target` (bicubic for
/// height, bilinear for winds) producing the model's initial state.
DomainState preprocess(const SyntheticAnalysis& analysis,
                       const GridSpec& target);

}  // namespace adaptviz
