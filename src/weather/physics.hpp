// Cyclone physics: intensity evolution and forcing construction.
//
// A single shallow-water layer has no moist thermodynamics, so the latent
// heating that deepens a real tropical cyclone is parameterized the way
// operational statistical-dynamical models do it: a central-pressure-deficit
// ODE driven by sea-surface temperature while the eye is over ocean and by
// frictional decay after landfall, coupled back into the dynamics as a mass
// sink that relaxes the height field toward a Holland profile of the current
// target deficit. The storm's *motion* is left entirely to the dynamics
// (steering current + beta drift); only its *intensity* is parameterized.
//
// Deficit ODE (deficit d = p_env - p_center, hPa):
//   over ocean: dd/dt = k * s(SST) * d * (1 - d / d_max)     (logistic)
//   over land:  dd/dt = -d / tau_land
// with s(SST) ramping 0..1 over [sst_min, sst_min+3C]. Calibrated so the
// simulated Aila crosses 995 hPa (nest spawn) ~12 h in, completes the
// Table III ladder by ~28 h, and peaks near 970 hPa before landfall --
// matching the cyclone's real late-May-2009 timeline.
#pragma once

#include "weather/geography.hpp"
#include "weather/grid.hpp"
#include "weather/state.hpp"
#include "weather/vortex.hpp"

namespace adaptviz {

struct PhysicsConfig {
  double k_intensify_per_hour = 0.075;
  double deficit_max_hpa = 48.0;
  double sst_min_c = 26.5;
  double land_decay_tau_hours = 10.0;
  /// Relaxation time of h toward the Holland target near the eye.
  double mass_relax_tau_hours = 0.75;
  /// Rayleigh friction time over land.
  double land_friction_tau_hours = 6.0;
  /// Far-field nudge toward the undisturbed state (analysis nudging).
  double nudge_tau_hours = 24.0;
  /// Physical radius of maximum wind: shrinks as the storm organizes,
  /// r = r0 - r_shrink * deficit, floored at r_floor.
  double r_max0_km = 95.0;
  double r_shrink_km_per_hpa = 1.2;
  double r_floor_km = 40.0;
  double holland_b = 1.5;
};

class CyclonePhysics {
 public:
  CyclonePhysics(PhysicsConfig config, double initial_deficit_hpa,
                 LatLon initial_center);

  /// Advances the intensity ODE by dt and moves the prognostic storm centre
  /// with the large-scale steering current, pulled gently toward the
  /// field-diagnosed eye so the parameterization stays coupled to the
  /// dynamics (the dynamics remain free to displace the storm; the forcing
  /// follows rather than pins it).
  void advance(double dt_seconds, double steering_u, double steering_v,
               LatLon diagnosed_eye);

  /// Prognostic centre the forcing is anchored to.
  [[nodiscard]] LatLon center() const { return center_; }

  [[nodiscard]] double deficit_hpa() const { return deficit_; }
  [[nodiscard]] double central_pressure_hpa() const {
    return kEnvPressureHpa - deficit_;
  }

  /// Target Holland vortex for the current intensity at the prognostic
  /// centre. The radius of maximum wind is widened to what `resolution_km`
  /// can resolve (an under-resolved eye would alias; coarse grids carry
  /// broader, weaker cores — the very reason the paper refines resolution as
  /// the storm intensifies).
  [[nodiscard]] HollandVortex target_vortex(double resolution_km) const;

  /// Fills per-point forcing fields for one domain: `mass_tendency` (m/s)
  /// and `u/v_tendency` (m/s^2) relaxing height *and* winds toward the
  /// balanced Holland target near the storm centre — at these scales (storm
  /// core well below the Rossby radius) a mass anomaly alone would radiate
  /// away as gravity waves, so the momentum field must be forced in balance
  /// with it — plus `relaxation` (1/s) combining land friction with
  /// far-field analysis nudging. `land` must be the domain's land_mask().
  void build_forcing(const DomainState& state, const Field2D& land,
                     Field2D& mass_tendency, Field2D& u_tendency,
                     Field2D& v_tendency, Field2D& relaxation) const;

  [[nodiscard]] const PhysicsConfig& config() const { return config_; }

  /// Directly sets the prognostic state (used by checkpoint restore).
  void restore(double deficit_hpa, LatLon center) {
    deficit_ = deficit_hpa;
    center_ = center;
  }

 private:
  PhysicsConfig config_;
  double deficit_;
  LatLon center_;
};

}  // namespace adaptviz
