#include "weather/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "weather/domain_io.hpp"

namespace adaptviz {

WeatherModel::WeatherModel(const ModelConfig& config,
                           const ResolutionLadder& ladder)
    : WeatherModel(config, ladder, /*defer_init=*/false) {}

WeatherModel::WeatherModel(const ModelConfig& config,
                           const ResolutionLadder& ladder, bool defer_init)
    : config_(config),
      ladder_(ladder),
      solver_(config.dynamics),
      analysis_(SyntheticAnalysis::generate(config.lon0, config.lat0,
                                            config.extent_lon_deg,
                                            config.extent_lat_deg,
                                            config.analysis)),
      modeled_res_km_(config.base_resolution_km),
      physics_(config.physics, config.analysis.initial_vortex.deficit_hpa,
               config.analysis.initial_vortex.center) {
  if (config.compute_scale < 1.0) {
    throw std::invalid_argument("ModelConfig: compute_scale must be >= 1");
  }
  if (!defer_init) init_from_analysis();
}

GridSpec WeatherModel::modeled_parent_grid() const {
  return GridSpec(config_.lon0, config_.lat0, config_.extent_lon_deg,
                  config_.extent_lat_deg, modeled_res_km_);
}

GridSpec WeatherModel::compute_parent_grid() const {
  return GridSpec(config_.lon0, config_.lat0, config_.extent_lon_deg,
                  config_.extent_lat_deg,
                  modeled_res_km_ * config_.compute_scale);
}

void WeatherModel::init_from_analysis() {
  parent_ = preprocess(analysis_, compute_parent_grid());
  parent_land_ = land_mask(parent_.grid);

  // Incremental vortex bogussing: the 1-degree analysis cannot carry a
  // 90-km-core depression at full strength, so (as operational systems do)
  // deposit the difference between the intended bogus and what survived
  // interpolation, with a core no sharper than the compute grid resolves.
  const HollandVortex intended = analysis_.config().initial_vortex;
  const GridSpec& g = parent_.grid;
  const double analyzed_min =
      parent_.h.sample(g.x_of_lon(intended.center.lon),
                       g.y_of_lat(intended.center.lat));
  const double wanted_min = -intended.deficit_hpa / kHpaPerMetre;
  if (wanted_min < analyzed_min) {
    HollandVortex increment = intended;
    increment.deficit_hpa = -(wanted_min - analyzed_min) * kHpaPerMetre;
    increment.r_max_km =
        std::max(intended.r_max_km, 2.2 * g.resolution_km());
    increment.deposit(parent_);
  }

  tracker_.update(parent_, sim_time_);
  maybe_spawn_or_move_nest();
}

void WeatherModel::rebuild_compute_grids(const DomainState* old_parent) {
  // Regrid parent from its previous self ("WPS needs input data at a finer
  // resolution" — here the restart interpolates the checkpointed state).
  const GridSpec target = compute_parent_grid();
  DomainState next(target);
  const DomainState& src = old_parent != nullptr ? *old_parent : parent_;
  for (std::size_t j = 0; j < target.ny(); ++j) {
    for (std::size_t i = 0; i < target.nx(); ++i) {
      const LatLon p = target.at(i, j);
      const GridSpec& sg = src.grid;
      const double x = sg.x_of_lon(p.lon);
      const double y = sg.y_of_lat(p.lat);
      next.h(i, j) = src.h.sample(x, y);
      next.u(i, j) = src.u.sample(x, y);
      next.v(i, j) = src.v.sample(x, y);
    }
  }
  parent_ = std::move(next);
  parent_land_ = land_mask(parent_.grid);

  if (nest_.has_value()) {
    nest_.emplace(parent_, tracker_.eye(), config_.nest_extent_deg);
    nest_land_ = land_mask(nest_->grid());
  }
}

double WeatherModel::recommended_resolution_km() const {
  return ladder_.resolution_for(tracker_.lowest_pressure_ever_hpa(),
                                config_.base_resolution_km);
}

bool WeatherModel::resolution_change_pending() const {
  return recommended_resolution_km() < modeled_res_km_ - 1e-9;
}

void WeatherModel::set_modeled_resolution(double res_km) {
  if (res_km <= 0) {
    throw std::invalid_argument("set_modeled_resolution: res must be > 0");
  }
  if (std::fabs(res_km - modeled_res_km_) < 1e-12) return;
  modeled_res_km_ = res_km;
  rebuild_compute_grids(nullptr);
}

void WeatherModel::maybe_spawn_or_move_nest() {
  const double spawn_p = ladder_.spawn_pressure_hpa();
  if (!nest_.has_value()) {
    if (tracker_.min_pressure_hpa() < spawn_p) {
      nest_.emplace(parent_, tracker_.eye(), config_.nest_extent_deg);
      nest_land_ = land_mask(nest_->grid());
    }
    return;
  }
  if (nest_->needs_recenter(tracker_.eye())) {
    nest_->recenter(parent_, tracker_.eye());
    nest_land_ = land_mask(nest_->grid());
  }
}

SimSeconds WeatherModel::step() {
  const double dt = dt_seconds();
  const bool storm_active = physics_.deficit_hpa() > 2.0;

  SwForcing forcing;
  forcing.steering_u = analysis_.config().steering.u(sim_time_);
  forcing.steering_v = analysis_.config().steering.v(sim_time_);
  if (storm_active) {
    physics_.build_forcing(parent_, parent_land_, parent_q_, parent_fu_,
                           parent_fv_, parent_relax_);
    forcing.mass_tendency = &parent_q_;
    forcing.u_tendency = &parent_fu_;
    forcing.v_tendency = &parent_fv_;
    forcing.relaxation = &parent_relax_;
  }
  solver_.step(parent_, dt, forcing);

  if (nest_.has_value()) {
    SwForcing nf;
    nf.steering_u = forcing.steering_u;
    nf.steering_v = forcing.steering_v;
    const double ndt = dt / kNestRatio;
    for (int k = 0; k < kNestRatio; ++k) {
      nest_->apply_boundary(parent_);
      if (storm_active) {
        physics_.build_forcing(nest_->state(), nest_land_, nest_q_, nest_fu_,
                               nest_fv_, nest_relax_);
        nf.mass_tendency = &nest_q_;
        nf.u_tendency = &nest_fu_;
        nf.v_tendency = &nest_fv_;
        nf.relaxation = &nest_relax_;
      }
      solver_.step(nest_->state(), ndt, nf);
    }
    nest_->feedback(parent_);
  }

  physics_.advance(dt, forcing.steering_u, forcing.steering_v,
                   tracker_.eye());
  sim_time_ += SimSeconds(dt);

  // Track on the finest available domain.
  tracker_.update(nest_.has_value() ? nest_->state() : parent_, sim_time_);
  maybe_spawn_or_move_nest();
  return SimSeconds(dt);
}

double WeatherModel::work_units() const {
  const GridSpec parent = modeled_parent_grid();
  double updates = static_cast<double>(parent.point_count());
  if (nest_.has_value()) {
    const GridSpec nest(nest_->grid().lon0(), nest_->grid().lat0(),
                        nest_->grid().extent_lon(), nest_->grid().extent_lat(),
                        modeled_res_km_ / kNestRatio);
    updates += static_cast<double>(nest.point_count()) * kNestRatio;
  }
  return updates / 1e6;
}

Bytes WeatherModel::frame_bytes() const {
  const GridSpec parent = modeled_parent_grid();
  double points = static_cast<double>(parent.point_count());
  if (nest_.has_value()) {
    const GridSpec nest(nest_->grid().lon0(), nest_->grid().lat0(),
                        nest_->grid().extent_lon(), nest_->grid().extent_lat(),
                        modeled_res_km_ / kNestRatio);
    points += static_cast<double>(nest.point_count());
  }
  return Bytes(static_cast<std::int64_t>(points * config_.frame_variables *
                                         config_.frame_levels *
                                         config_.frame_bytes_per_value));
}

int WeatherModel::max_usable_processors() const {
  const GridSpec parent = modeled_parent_grid();
  int limit = static_cast<int>(parent.point_count() / 36);
  if (nest_.has_value()) {
    const GridSpec nest(nest_->grid().lon0(), nest_->grid().lat0(),
                        nest_->grid().extent_lon(), nest_->grid().extent_lat(),
                        modeled_res_km_ / kNestRatio);
    limit = std::min(limit, static_cast<int>(nest.point_count() / 81));
  }
  return std::max(1, limit);
}

NclFile WeatherModel::make_frame() const {
  NclFile f;
  encode_domain(f, "parent", parent_);
  if (nest_.has_value()) encode_domain(f, "nest", nest_->state());
  f.set_attribute("sim_time_seconds", sim_time_.seconds());
  f.set_attribute("modeled_resolution_km", modeled_res_km_);
  f.set_attribute("min_pressure_hpa", tracker_.min_pressure_hpa());
  f.set_attribute("max_wind_ms", tracker_.max_wind_ms());
  f.set_attribute("eye_lat", tracker_.eye().lat);
  f.set_attribute("eye_lon", tracker_.eye().lon);
  f.set_attribute("nest_active", static_cast<std::int64_t>(nest_.has_value()));
  return f;
}

NclFile WeatherModel::checkpoint() const {
  NclFile f = make_frame();
  // Track history rides along so the cyclone's path survives restarts.
  const auto& track = tracker_.track();
  const auto n = f.add_dimension("track_points", track.size());
  const char* names[] = {"track_time", "track_lat", "track_lon",
                         "track_pressure", "track_wind"};
  for (int field = 0; field < 5; ++field) {
    NclVariable v;
    v.name = names[field];
    v.dims = {n};
    v.data.reserve(track.size());
    for (const TrackPoint& p : track) {
      switch (field) {
        case 0:
          v.data.push_back(p.time.seconds());
          break;
        case 1:
          v.data.push_back(p.eye.lat);
          break;
        case 2:
          v.data.push_back(p.eye.lon);
          break;
        case 3:
          v.data.push_back(p.min_pressure_hpa);
          break;
        default:
          v.data.push_back(p.max_wind_ms);
      }
    }
    f.add_variable(std::move(v));
  }
  f.set_attribute("deficit_hpa", physics_.deficit_hpa());
  f.set_attribute("storm_center_lat", physics_.center().lat);
  f.set_attribute("storm_center_lon", physics_.center().lon);
  f.set_attribute("lowest_pressure_ever_hpa",
                  tracker_.lowest_pressure_ever_hpa());
  f.set_attribute("checkpoint", static_cast<std::int64_t>(1));
  return f;
}

WeatherModel WeatherModel::restore(const ModelConfig& config,
                                   const ResolutionLadder& ladder,
                                   const NclFile& checkpoint) {
  WeatherModel m(config, ladder, /*defer_init=*/true);
  m.modeled_res_km_ = attr_double(checkpoint, "modeled_resolution_km");
  m.sim_time_ = SimSeconds(attr_double(checkpoint, "sim_time_seconds"));
  m.parent_ = decode_domain(checkpoint, "parent");
  // The checkpoint may have been written at a different compute resolution
  // (that is the point: restart with a new configuration). Regrid.
  const DomainState from_ckpt = m.parent_;
  m.parent_ = DomainState(m.compute_parent_grid());
  m.rebuild_compute_grids(&from_ckpt);

  m.physics_.restore(attr_double(checkpoint, "deficit_hpa"),
                     LatLon{attr_double(checkpoint, "storm_center_lat"),
                            attr_double(checkpoint, "storm_center_lon")});
  m.tracker_.restore(
      LatLon{attr_double(checkpoint, "eye_lat"),
             attr_double(checkpoint, "eye_lon")},
      attr_double(checkpoint, "min_pressure_hpa"),
      attr_double(checkpoint, "lowest_pressure_ever_hpa"));
  if (checkpoint.has_variable("track_time")) {
    const auto& tt = checkpoint.variable("track_time").data;
    const auto& la = checkpoint.variable("track_lat").data;
    const auto& lo = checkpoint.variable("track_lon").data;
    const auto& pr = checkpoint.variable("track_pressure").data;
    const auto& wi = checkpoint.variable("track_wind").data;
    std::vector<TrackPoint> points;
    points.reserve(tt.size());
    for (std::size_t i = 0; i < tt.size(); ++i) {
      points.push_back(TrackPoint{SimSeconds(tt[i]), LatLon{la[i], lo[i]},
                                  pr[i], wi[i]});
    }
    m.tracker_.restore_track(std::move(points));
  }

  if (checkpoint.has_variable("nest_h")) {
    DomainState nest_state = decode_domain(checkpoint, "nest");
    // Rebuild the nest at the (possibly new) resolution around the eye,
    // then pull what we can from the checkpointed fine fields.
    m.nest_.emplace(m.parent_, m.tracker_.eye(), config.nest_extent_deg);
    NestDomain& nest = *m.nest_;
    DomainState target(nest.grid());
    for (std::size_t j = 0; j < target.grid.ny(); ++j) {
      for (std::size_t i = 0; i < target.grid.nx(); ++i) {
        const LatLon p = target.grid.at(i, j);
        const GridSpec& sg = nest_state.grid;
        const double x = sg.x_of_lon(p.lon);
        const double y = sg.y_of_lat(p.lat);
        if (x >= 0 && y >= 0 && x <= static_cast<double>(sg.nx() - 1) &&
            y <= static_cast<double>(sg.ny() - 1)) {
          target.h(i, j) = nest_state.h.sample(x, y);
          target.u(i, j) = nest_state.u.sample(x, y);
          target.v(i, j) = nest_state.v.sample(x, y);
        } else {
          const GridSpec& pg = m.parent_.grid;
          const double px = pg.x_of_lon(p.lon);
          const double py = pg.y_of_lat(p.lat);
          target.h(i, j) = m.parent_.h.sample(px, py);
          target.u(i, j) = m.parent_.u.sample(px, py);
          target.v(i, j) = m.parent_.v.sample(px, py);
        }
      }
    }
    nest.restore_state(std::move(target));
    m.nest_land_ = land_mask(nest.grid());
  }
  m.tracker_.update(m.nest_.has_value() ? m.nest_->state() : m.parent_,
                    m.sim_time_);
  return m;
}

}  // namespace adaptviz
