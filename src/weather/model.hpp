// WeatherModel — the WRF stand-in the rest of the framework drives.
//
// Two grids per domain, deliberately decoupled:
//
//  * The *modeled* grid is what the framework reasons about: the Table III
//    resolution ladder, per-step work units for the performance model, and
//    frame sizes for the disk/network models all derive from the modeled
//    resolution (e.g. 24 km parent, 8 km nest).
//  * The *compute* grid is what the shallow-water core actually integrates:
//    modeled resolution x compute_scale. With scale > 1 a 60-hour cyclone
//    experiment replays in seconds while the physics stays real; examples
//    use small scales for pretty fields, benches use larger ones.
//
// The time step always follows the modeled resolution (WRF's dt = 6*dx
// rule), so the framework sees the authentic step cadence; the CFL number on
// the compute grid only *drops* as scale grows.
//
// The model deliberately does NOT change its own resolution: like WRF under
// the paper's framework, it reports that a threshold was crossed
// (`recommended_resolution()` differs from `modeled_resolution_km()`) and
// the job handler stops it, checkpoints and restarts it with the new
// configuration.
#pragma once

#include <memory>
#include <optional>

#include "dataio/ncl.hpp"
#include "weather/analysis.hpp"
#include "weather/dynamics.hpp"
#include "weather/geography.hpp"
#include "weather/nest.hpp"
#include "weather/physics.hpp"
#include "weather/tracker.hpp"

namespace adaptviz {

struct ModelConfig {
  /// Geographic parent domain; paper: 60E-120E, 10S-40N (~32e6 sq km).
  double lon0 = 60.0;
  double lat0 = -10.0;
  double extent_lon_deg = 60.0;
  double extent_lat_deg = 50.0;

  /// Modeled parent resolution before the ladder engages (Table III row 1).
  double base_resolution_km = 24.0;
  /// Compute grid coarsening factor (>= 1); see file comment.
  double compute_scale = 4.0;
  /// Moving nest extent (degrees each way). The paper's minimum nest grid of
  /// 100x127 points at a 1:3 ratio corresponds to roughly this footprint.
  double nest_extent_deg = 9.0;

  AnalysisConfig analysis{};
  PhysicsConfig physics{};
  SwParams dynamics{};

  /// Modeled frame contents: values per grid point = variables x levels.
  /// 18 variables on 27 model levels at 4 bytes puts fine-resolution frames
  /// in the several-hundred-megabyte regime, the balance point where the
  /// Table IV networks are genuinely resource-constrained (see
  /// EXPERIMENTS.md calibration note).
  double frame_variables = 18.0;
  double frame_levels = 27.0;
  double frame_bytes_per_value = 4.0;
};

class WeatherModel {
 public:
  explicit WeatherModel(const ModelConfig& config,
                        const ResolutionLadder& ladder =
                            ResolutionLadder::table3());

  /// Advances one parent time step (dt = 6 * modeled resolution seconds):
  /// parent RK3 step, three nest substeps with boundary exchange and
  /// feedback, intensity ODE, tracking, nest spawn/recenter.
  /// Returns the simulated time advanced.
  SimSeconds step();

  [[nodiscard]] SimSeconds sim_time() const { return sim_time_; }
  [[nodiscard]] double dt_seconds() const {
    return SwSolver::dt_for_resolution_km(modeled_res_km_);
  }

  [[nodiscard]] double modeled_resolution_km() const {
    return modeled_res_km_;
  }
  /// Resolution Table III prescribes for the deepest pressure seen so far.
  [[nodiscard]] double recommended_resolution_km() const;
  /// True once the storm warrants a finer grid than the model currently
  /// runs — the signal WRF sends the job handler.
  [[nodiscard]] bool resolution_change_pending() const;

  /// Re-grids parent (and nest) to a new modeled resolution. Called by the
  /// job handler as part of a restart, never mid-run by the model itself.
  void set_modeled_resolution(double res_km);

  [[nodiscard]] bool nest_active() const { return nest_.has_value(); }
  [[nodiscard]] const std::optional<NestDomain>& nest() const { return nest_; }
  [[nodiscard]] const DomainState& parent_state() const { return parent_; }
  [[nodiscard]] const CycloneTracker& tracker() const { return tracker_; }
  [[nodiscard]] const CyclonePhysics& physics() const { return physics_; }
  [[nodiscard]] double min_pressure_hpa() const {
    return tracker_.min_pressure_hpa();
  }
  [[nodiscard]] LatLon eye() const { return tracker_.eye(); }

  /// --- Quantities the resource/performance models consume (all derived
  /// --- from the *modeled* grids). ---
  /// Million grid-point updates per parent step (nest counts x3 substeps).
  [[nodiscard]] double work_units() const;
  /// Modeled on-disk size of one output frame.
  [[nodiscard]] Bytes frame_bytes() const;
  /// WRF decomposition limit: >= 6x6 parent and >= 9x9 nest points per rank.
  [[nodiscard]] int max_usable_processors() const;

  /// Snapshot of the compute fields for visualization (real data).
  [[nodiscard]] NclFile make_frame() const;

  /// Full-state checkpoint / restart (job handler reschedules WRF "using
  /// WRF checkpointed data with the new application configuration").
  [[nodiscard]] NclFile checkpoint() const;
  static WeatherModel restore(const ModelConfig& config,
                              const ResolutionLadder& ladder,
                              const NclFile& checkpoint);

  [[nodiscard]] const ModelConfig& config() const { return config_; }
  [[nodiscard]] const ResolutionLadder& ladder() const { return ladder_; }

 private:
  WeatherModel(const ModelConfig& config, const ResolutionLadder& ladder,
               bool defer_init);
  void init_from_analysis();
  void rebuild_compute_grids(const DomainState* old_parent);
  [[nodiscard]] GridSpec modeled_parent_grid() const;
  [[nodiscard]] GridSpec compute_parent_grid() const;
  void maybe_spawn_or_move_nest();

  ModelConfig config_;
  ResolutionLadder ladder_;
  SwSolver solver_;
  SyntheticAnalysis analysis_;
  double modeled_res_km_;
  SimSeconds sim_time_{0.0};

  DomainState parent_;
  std::optional<NestDomain> nest_;
  Field2D parent_land_;
  Field2D nest_land_;
  CycloneTracker tracker_;
  CyclonePhysics physics_;

  // Scratch forcing fields reused across steps.
  Field2D parent_q_, parent_fu_, parent_fv_, parent_relax_;
  Field2D nest_q_, nest_fu_, nest_fv_, nest_relax_;
};

}  // namespace adaptviz
