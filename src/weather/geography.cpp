#include "weather/geography.hpp"

#include <algorithm>
#include <cmath>

namespace adaptviz {
namespace {

// Smooth 0->1 ramp over ~0.4 degrees; positive argument means "inside".
double ramp(double deg_inside) {
  return 1.0 / (1.0 + std::exp(-deg_inside / 0.2));
}

// Piecewise-linear longitude of a coastline as a function of latitude.
double lerp_coast(double lat, const double (*pts)[2], int n) {
  if (lat <= pts[0][0]) return pts[0][1];
  for (int i = 1; i < n; ++i) {
    if (lat <= pts[i][0]) {
      const double f = (lat - pts[i - 1][0]) / (pts[i][0] - pts[i - 1][0]);
      return pts[i - 1][1] + f * (pts[i][1] - pts[i - 1][1]);
    }
  }
  return pts[n - 1][1];
}

// Indian east coast (Coromandel up to the head of the Bay of Bengal).
constexpr double kEastCoast[][2] = {
    {6.0, 77.5}, {12.0, 80.0}, {16.0, 82.2}, {20.0, 86.8}, {21.7, 88.2}};
// Indian west coast (Malabar up through Gujarat).
constexpr double kWestCoast[][2] = {
    {6.0, 77.0}, {15.0, 73.8}, {20.0, 70.8}, {23.5, 68.3}};
// Myanmar / Thai coast on the eastern rim of the Bay.
constexpr double kSeCoast[][2] = {
    {6.0, 99.5}, {10.0, 98.2}, {16.0, 94.3}, {20.0, 92.9}, {21.8, 92.0}};

}  // namespace

double land_fraction(LatLon p) {
  double score = 0.0;

  // Indian subcontinent: between the west and east coasts, south of ~24N.
  if (p.lat < 26.0) {
    const double east = lerp_coast(p.lat, kEastCoast, 5);
    const double west = lerp_coast(p.lat, kWestCoast, 4);
    score = std::max(score, std::min(ramp(east - p.lon), ramp(p.lon - west)));
  }
  // Gangetic plain / Bengal north of the head of the Bay.
  score = std::max(
      score, std::min(ramp(p.lat - 21.8), ramp(92.5 - p.lon)) * ramp(p.lon - 60.0));
  // Central/High Asia across the top of the domain.
  score = std::max(score, ramp(p.lat - 24.5));
  // Myanmar and the Malay peninsula east of the Bay.
  if (p.lat < 24.0) {
    const double se = lerp_coast(p.lat, kSeCoast, 5);
    score = std::max(score, ramp(p.lon - se));
  }
  return std::clamp(score, 0.0, 1.0);
}

double sea_surface_temp(LatLon p) {
  // Warm pool ~31C centred near 10N, cooling poleward.
  const double d = p.lat - 10.0;
  return 31.0 - 0.035 * d * d;
}

Field2D land_mask(const GridSpec& grid) {
  Field2D mask(grid.nx(), grid.ny());
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      mask(i, j) = land_fraction(grid.at(i, j));
    }
  }
  return mask;
}

}  // namespace adaptviz
