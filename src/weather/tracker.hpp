// Cyclone detection, track recording, and the Table III resolution ladder.
//
// The paper: "Our framework spawns a nest when the pressure drops below
// 995 hPa. The nest is centered at the location of lowest pressure in the
// parent domain. ... As and when the cyclone intensifies i.e. the pressure
// decreases further, our framework changes the resolution of the nest
// multiple times" (Table III: 995->24 km ... 986->10 km, with a 1:3 nest).
#pragma once

#include <optional>
#include <vector>

#include "util/units.hpp"
#include "weather/state.hpp"

namespace adaptviz {

struct TrackPoint {
  SimSeconds time{};
  LatLon eye;
  double min_pressure_hpa = kEnvPressureHpa;
  double max_wind_ms = 0.0;
};

class CycloneTracker {
 public:
  /// `record_interval` limits how often points are appended to the track
  /// history (the eye/pressure observation itself is refreshed every call).
  explicit CycloneTracker(
      SimSeconds record_interval = SimSeconds::minutes(30.0));

  /// Scans a (lightly smoothed) pressure field for the storm centre.
  void update(const DomainState& state, SimSeconds now);

  [[nodiscard]] LatLon eye() const { return eye_; }
  [[nodiscard]] double min_pressure_hpa() const { return min_pressure_; }
  [[nodiscard]] double max_wind_ms() const { return max_wind_; }
  /// Deepest pressure observed over the whole run.
  [[nodiscard]] double lowest_pressure_ever_hpa() const {
    return lowest_ever_;
  }
  [[nodiscard]] const std::vector<TrackPoint>& track() const { return track_; }

  /// Restores tracker state after a checkpoint restart.
  void restore(LatLon eye, double min_pressure, double lowest_ever);

  /// Restores the recorded track history (checkpoints carry it so the track
  /// survives job-handler restarts). Points must be time-ordered.
  void restore_track(std::vector<TrackPoint> points);

 private:
  SimSeconds record_interval_;
  SimSeconds last_record_{-1e18};
  LatLon eye_{};
  double min_pressure_ = kEnvPressureHpa;
  double max_wind_ = 0.0;
  double lowest_ever_ = kEnvPressureHpa;
  std::vector<TrackPoint> track_;
};

/// Pressure-to-resolution schedule (paper Table III). Resolution switches are
/// one-way: once the storm has deepened past a threshold the finer resolution
/// is kept even if the pressure later rises (the framework refines as the
/// cyclone intensifies; it does not coarsen during decay).
class ResolutionLadder {
 public:
  struct Rung {
    double pressure_hpa;    // switch when min pressure drops below this
    double resolution_km;   // parent-domain resolution to use
  };

  /// Table III defaults: {995,24} {994,21} {992,18} {990,15} {988,12}
  /// {986,10}, nest ratio 1:3 (finest nest 10/3 = 3.33 km).
  static ResolutionLadder table3();

  /// Custom schedule; rungs must be strictly decreasing in both pressure and
  /// resolution. Throws std::invalid_argument otherwise.
  explicit ResolutionLadder(std::vector<Rung> rungs);

  /// Resolution for the deepest pressure seen so far; `base_resolution` is
  /// returned while the storm is weaker than the first rung.
  [[nodiscard]] double resolution_for(double lowest_pressure_hpa,
                                      double base_resolution_km) const;

  /// Pressure below which a nest exists (the first rung's threshold).
  [[nodiscard]] double spawn_pressure_hpa() const;

  [[nodiscard]] const std::vector<Rung>& rungs() const { return rungs_; }

 private:
  std::vector<Rung> rungs_;
};

}  // namespace adaptviz
