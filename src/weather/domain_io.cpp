#include "weather/domain_io.hpp"

#include <stdexcept>

namespace adaptviz {

void encode_domain(NclFile& f, const std::string& prefix,
                   const DomainState& s) {
  const GridSpec& g = s.grid;
  const auto dx = f.add_dimension(prefix + "_x", g.nx());
  const auto dy = f.add_dimension(prefix + "_y", g.ny());
  for (const char* name : {"h", "u", "v"}) {
    NclVariable v;
    v.name = prefix + "_" + name;
    v.dims = {dy, dx};
    v.data = name[0] == 'h'   ? s.h.data()
             : name[0] == 'u' ? s.u.data()
                              : s.v.data();
    f.add_variable(std::move(v));
  }
  f.set_attribute(prefix + "_lon0", g.lon0());
  f.set_attribute(prefix + "_lat0", g.lat0());
  f.set_attribute(prefix + "_extent_lon", g.extent_lon());
  f.set_attribute(prefix + "_extent_lat", g.extent_lat());
  f.set_attribute(prefix + "_resolution_km", g.resolution_km());
}

double attr_double(const NclFile& f, const std::string& name) {
  const auto it = f.attributes().find(name);
  if (it == f.attributes().end()) {
    throw std::runtime_error("ncl: missing attribute " + name);
  }
  if (const auto* d = std::get_if<double>(&it->second)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&it->second)) {
    return static_cast<double>(*i);
  }
  throw std::runtime_error("ncl: attribute " + name + " not numeric");
}

DomainState decode_domain(const NclFile& f, const std::string& prefix) {
  const GridSpec g(attr_double(f, prefix + "_lon0"),
                   attr_double(f, prefix + "_lat0"),
                   attr_double(f, prefix + "_extent_lon"),
                   attr_double(f, prefix + "_extent_lat"),
                   attr_double(f, prefix + "_resolution_km"));
  DomainState s(g);
  for (const char* name : {"h", "u", "v"}) {
    const NclVariable& v = f.variable(prefix + "_" + std::string(name));
    if (v.data.size() != g.point_count()) {
      throw std::runtime_error("ncl: field size mismatch for " + prefix);
    }
    (name[0] == 'h'   ? s.h
     : name[0] == 'u' ? s.u
                      : s.v)
        .data() = v.data;
  }
  return s;
}

bool has_domain(const NclFile& f, const std::string& prefix) {
  return f.has_variable(prefix + "_h");
}

}  // namespace adaptviz
