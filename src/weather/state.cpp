#include "weather/state.hpp"

#include <cmath>

namespace adaptviz {

namespace {
constexpr double kOmega = 7.2921e-5;  // Earth's rotation rate (rad/s)
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double coriolis(double lat_deg) {
  return 2.0 * kOmega * std::sin(lat_deg * kPi / 180.0);
}

Field2D DomainState::pressure_field() const {
  Field2D p(grid.nx(), grid.ny());
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      p(i, j) = pressure_hpa(i, j);
    }
  }
  return p;
}

Field2D DomainState::wind_speed() const {
  Field2D s(grid.nx(), grid.ny());
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      s(i, j) = std::hypot(u(i, j), v(i, j));
    }
  }
  return s;
}

Field2D DomainState::vorticity() const {
  Field2D z(grid.nx(), grid.ny(), 0.0);
  const double inv2dx = 1.0 / (2.0 * grid.dx_m());
  for (std::size_t j = 1; j + 1 < grid.ny(); ++j) {
    for (std::size_t i = 1; i + 1 < grid.nx(); ++i) {
      z(i, j) = (v(i + 1, j) - v(i - 1, j)) * inv2dx -
                (u(i, j + 1) - u(i, j - 1)) * inv2dx;
    }
  }
  return z;
}

}  // namespace adaptviz
