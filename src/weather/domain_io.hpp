// Serialization of DomainState to/from NCL files.
//
// Shared by the model's frame/checkpoint writer and by any consumer of
// frames (the visualization pipeline decodes the same layout at the remote
// site). Fields are stored as "<prefix>_h/u/v" with the grid geometry in
// "<prefix>_*" attributes.
#pragma once

#include <string>

#include "dataio/ncl.hpp"
#include "weather/state.hpp"

namespace adaptviz {

/// Appends one domain's fields and grid attributes under `prefix`.
void encode_domain(NclFile& file, const std::string& prefix,
                   const DomainState& state);

/// Reconstructs a domain; throws std::runtime_error on missing/ill-formed
/// content.
DomainState decode_domain(const NclFile& file, const std::string& prefix);

/// True when the file carries a domain under `prefix`.
bool has_domain(const NclFile& file, const std::string& prefix);

/// Reads a numeric global attribute (double or int64) or throws.
double attr_double(const NclFile& file, const std::string& name);

}  // namespace adaptviz
