// Track verification metrics.
//
// The paper validates its simulation qualitatively: "the depression was
// formed in the central Bay of Bengal region (around 14N) and traversed
// north-east upto Darjeeling (27N)". These utilities quantify that kind of
// statement: given a reference track (best-track points from the cyclone
// report) and a simulated track, compute position errors at matched times —
// the standard verification of tropical-cyclone forecasts.
#pragma once

#include <vector>

#include "weather/tracker.hpp"

namespace adaptviz {

struct TrackError {
  SimSeconds time{};
  /// Great-circle-free planar distance between simulated and reference eye.
  double position_error_km = 0.0;
  /// Central-pressure difference (simulated - reference), hPa.
  double pressure_error_hpa = 0.0;
};

/// Linear interpolation of a track at time `t`. The track must be non-empty
/// and time-ordered; `t` is clamped to its span.
TrackPoint interpolate_track(const std::vector<TrackPoint>& track,
                             SimSeconds t);

/// Position/pressure error of `simulated` against each reference point
/// whose time lies within the simulated track's span.
std::vector<TrackError> verify_track(const std::vector<TrackPoint>& simulated,
                                     const std::vector<TrackPoint>& reference);

/// Mean position error (km) over the matched points; throws on empty input.
double mean_position_error_km(const std::vector<TrackError>& errors);

/// Coarse Aila reference track assembled from the facts the paper cites
/// (formation in the central Bay near 14N on 23 May, landfall near the head
/// of the Bay, dissipation toward Darjeeling ~27N / 88.3E) — for
/// qualitative verification of the simulated storm, not an official
/// best-track dataset.
std::vector<TrackPoint> aila_reference_track();

}  // namespace adaptviz
