// Iso-contour extraction by marching squares.
//
// Produces line segments in fractional grid coordinates for a given iso
// value; the renderer rasterizes them over the pseudocolor base layer (the
// paper visualizes WRF output with VisIt contour plots).
#pragma once

#include <vector>

#include "weather/grid.hpp"

namespace adaptviz {

struct ContourSegment {
  double x0, y0, x1, y1;  // fractional grid coordinates
};

/// Extracts all segments of the `iso` level. Cells containing NaN are
/// skipped. Saddle cells are resolved by the cell-average rule.
std::vector<ContourSegment> marching_squares(const Field2D& field, double iso);

/// Convenience: segments for several levels concatenated.
std::vector<ContourSegment> marching_squares(const Field2D& field,
                                             const std::vector<double>& isos);

}  // namespace adaptviz
