#include "vis/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adaptviz {

Image::Image(std::size_t width, std::size_t height, Rgb fill)
    : w_(width), h_(height), px_(width * height, fill) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Image: zero dimension");
  }
}

void Image::set(long x, long y, Rgb c) {
  if (x < 0 || y < 0 || x >= static_cast<long>(w_) ||
      y >= static_cast<long>(h_)) {
    return;
  }
  px_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)] = c;
}

void Image::blend(long x, long y, Rgb c, double alpha) {
  if (x < 0 || y < 0 || x >= static_cast<long>(w_) ||
      y >= static_cast<long>(h_)) {
    return;
  }
  alpha = std::clamp(alpha, 0.0, 1.0);
  Rgb& p = px_[static_cast<std::size_t>(y) * w_ + static_cast<std::size_t>(x)];
  p.r = static_cast<std::uint8_t>(std::lround(p.r + alpha * (c.r - p.r)));
  p.g = static_cast<std::uint8_t>(std::lround(p.g + alpha * (c.g - p.g)));
  p.b = static_cast<std::uint8_t>(std::lround(p.b + alpha * (c.b - p.b)));
}

void Image::draw_line(long x0, long y0, long x1, long y1, Rgb c) {
  const long dx = std::abs(x1 - x0);
  const long dy = -std::abs(y1 - y0);
  const long sx = x0 < x1 ? 1 : -1;
  const long sy = y0 < y1 ? 1 : -1;
  long err = dx + dy;
  while (true) {
    set(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const long e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Image::draw_disc(long cx, long cy, long radius, Rgb c) {
  for (long y = -radius; y <= radius; ++y) {
    for (long x = -radius; x <= radius; ++x) {
      if (x * x + y * y <= radius * radius) set(cx + x, cy + y, c);
    }
  }
}

std::string Image::encode_ppm() const {
  std::ostringstream out;
  out << "P6\n" << w_ << " " << h_ << "\n255\n";
  for (const Rgb& p : px_) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  return out.str();
}

void Image::save_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Image: cannot open " + path);
  const std::string data = encode_ppm();
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

}  // namespace adaptviz
