// Scene renderer: frame (NCL payload) -> image.
//
// Recreates the paper's VisIt plots in software: terrain background,
// pseudocolor of a chosen diagnostic (perturbation pressure as in Fig. 4,
// wind speed as in Fig. 3, vorticity), iso-contours, oriented wind glyphs,
// the nest outline inside the parent domain, the cyclone track, and an eye
// marker.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataio/ncl.hpp"
#include "vis/colormap.hpp"
#include "vis/image.hpp"
#include "weather/tracker.hpp"

namespace adaptviz {

enum class RenderField { kPressure, kWindSpeed, kVorticity, kHeight };

struct RenderOptions {
  std::size_t width = 720;
  RenderField field = RenderField::kPressure;
  /// Opacity of the pseudocolor layer over the terrain background.
  double field_alpha = 0.6;
  bool draw_contours = true;
  int contour_levels = 8;
  bool draw_glyphs = true;
  /// Glyph spacing in pixels.
  int glyph_spacing_px = 36;
  /// Overlay wind streamlines (integral curves of the parent wind field).
  bool draw_streamlines = false;
  /// Composite a volume-rendered cloud layer (satellite-style) diagnosed
  /// from the parent state (see vis/volume.hpp).
  bool draw_cloud_volume = false;
  /// Streamline seed spacing in grid cells.
  double streamline_spacing_cells = 6.0;
  bool draw_nest_box = true;
  bool draw_track = true;
  bool draw_eye = true;
  /// Rendering threads for the pseudocolor/terrain base layer, the volume
  /// compositor, and streamline tracing (the paper's future work: "We
  /// intend to parallelize the visualization process"). 1 = serial; the
  /// pixel layers split into horizontal bands and streamlines into seed
  /// chunks, all on the shared persistent pool (util/thread_pool.hpp).
  int threads = 1;
};

class FrameRenderer {
 public:
  explicit FrameRenderer(RenderOptions options = {});

  /// Renders a frame produced by WeatherModel::make_frame(). The optional
  /// track is drawn as a polyline up to the frame's simulation time.
  [[nodiscard]] Image render(const NclFile& frame,
                             const std::vector<TrackPoint>* track) const;

  [[nodiscard]] const RenderOptions& options() const { return options_; }

 private:
  RenderOptions options_;
};

}  // namespace adaptviz
