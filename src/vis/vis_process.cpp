#include "vis/vis_process.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace adaptviz {

VisualizationProcess::VisualizationProcess(EventQueue& queue, Options options)
    : queue_(queue), options_(std::move(options)) {}

WallSeconds VisualizationProcess::visualize(const Frame& frame) {
  render_frame(frame);
  return record(frame);
}

void VisualizationProcess::render_frame(const Frame& frame) const {
  if (options_.render_images && frame.payload != nullptr &&
      !options_.output_dir.empty()) {
    const FrameRenderer renderer(options_.render_options);
    const Image img = renderer.render(*frame.payload, nullptr);
    char name[64];
    std::snprintf(name, sizeof name, "/frame_%06lld.ppm",
                  static_cast<long long>(frame.sequence));
    img.save_ppm(options_.output_dir + name);
  }
}

WallSeconds VisualizationProcess::record(const Frame& frame) {
  records_.push_back(VisRecord{queue_.now(), frame.sim_time, frame.sequence,
                               frame.size});
  ADAPTVIZ_LOG_DEBUG("vis", "frame #%lld visualized at wall %s",
                     static_cast<long long>(frame.sequence),
                     hh_mm(queue_.now()).c_str());
  if (options_.on_frame) options_.on_frame(frame, records_.back());
  // Rendering touches the decoded fields, so the cost scales with the
  // pre-codec size even when the frame travelled compressed.
  return WallSeconds(options_.fixed_seconds +
                     options_.seconds_per_gb * frame.decoded_bytes().gb());
}

SimSeconds VisualizationProcess::latest_visualized_sim_time() const {
  return records_.empty() ? SimSeconds(0.0) : records_.back().sim_time;
}

}  // namespace adaptviz
