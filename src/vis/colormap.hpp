// Scalar-to-color mapping.
//
// Three maps cover the paper's plots: a perceptually ordered viridis-like
// map for pseudocolor fields, a blue-white-red diverging map for
// perturbation pressure (Fig. 4), and a terrain map used for land/ocean
// backgrounds.
#pragma once

#include <string>
#include <vector>

#include "vis/image.hpp"

namespace adaptviz {

class Colormap {
 public:
  /// Control points evenly spaced over [0, 1], interpolated linearly.
  explicit Colormap(std::vector<Rgb> stops);

  static Colormap viridis();
  static Colormap diverging_blue_red();
  static Colormap terrain();

  /// t is clamped to [0, 1].
  [[nodiscard]] Rgb sample(double t) const;

  /// Maps v in [lo, hi] onto the ramp (degenerate ranges map to the middle).
  [[nodiscard]] Rgb map(double v, double lo, double hi) const;

 private:
  std::vector<Rgb> stops_;
};

}  // namespace adaptviz
