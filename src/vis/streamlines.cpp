#include "vis/streamlines.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {
namespace {

bool inside(const Field2D& f, double x, double y) {
  return x >= 0.0 && y >= 0.0 && x <= static_cast<double>(f.nx() - 1) &&
         y <= static_cast<double>(f.ny() - 1);
}

// One direction of the trace; dir = +1 downstream, -1 upstream.
void trace_direction(const Field2D& u, const Field2D& v, double x, double y,
                     double dir, const StreamlineOptions& opt,
                     Streamline& out) {
  for (int k = 0; k < opt.max_steps; ++k) {
    if (!inside(u, x, y)) break;
    const double u1 = u.sample(x, y);
    const double v1 = v.sample(x, y);
    const double s1 = std::hypot(u1, v1);
    if (s1 < opt.min_speed) break;
    // Midpoint (RK2): normalize so each step advances ~step_cells cells.
    const double hx = x + dir * opt.step_cells * 0.5 * u1 / s1;
    const double hy = y + dir * opt.step_cells * 0.5 * v1 / s1;
    if (!inside(u, hx, hy)) break;
    const double u2 = u.sample(hx, hy);
    const double v2 = v.sample(hx, hy);
    const double s2 = std::hypot(u2, v2);
    if (s2 < opt.min_speed) break;
    x += dir * opt.step_cells * u2 / s2;
    y += dir * opt.step_cells * v2 / s2;
    out.push_back({x, y});
  }
}

}  // namespace

Streamline trace_streamline(const Field2D& u, const Field2D& v,
                            double seed_x, double seed_y,
                            const StreamlineOptions& options) {
  if (u.nx() != v.nx() || u.ny() != v.ny()) {
    throw std::invalid_argument("trace_streamline: field shape mismatch");
  }
  if (options.step_cells <= 0 || options.max_steps < 1) {
    throw std::invalid_argument("trace_streamline: bad options");
  }
  if (!inside(u, seed_x, seed_y)) return {};

  Streamline upstream;
  trace_direction(u, v, seed_x, seed_y, -1.0, options, upstream);
  Streamline line;
  line.reserve(upstream.size() + 1 + static_cast<std::size_t>(options.max_steps));
  for (auto it = upstream.rbegin(); it != upstream.rend(); ++it) {
    line.push_back(*it);
  }
  line.push_back({seed_x, seed_y});
  trace_direction(u, v, seed_x, seed_y, +1.0, options, line);
  return line;
}

std::vector<Streamline> streamline_field(const Field2D& u, const Field2D& v,
                                         double seed_spacing_cells,
                                         std::size_t min_points,
                                         const StreamlineOptions& options,
                                         int threads) {
  if (seed_spacing_cells <= 0) {
    throw std::invalid_argument("streamline_field: bad seed spacing");
  }
  obs::ScopedSpan span("vis.streamlines");
  std::vector<std::pair<double, double>> seeds;
  for (double y = seed_spacing_cells / 2; y < static_cast<double>(u.ny() - 1);
       y += seed_spacing_cells) {
    for (double x = seed_spacing_cells / 2;
         x < static_cast<double>(u.nx() - 1); x += seed_spacing_cells) {
      seeds.emplace_back(x, y);
    }
  }

  // Trace into a per-seed slot (disjoint writes), then compact in seed
  // order: the output is identical for any thread count. Line lengths are
  // wildly uneven (stagnation vs. circumnavigating the vortex), so chunks
  // are scheduled dynamically.
  std::vector<Streamline> traced(seeds.size());
  ThreadPool::shared().parallel_for_chunked(
      0, seeds.size(), threads, /*chunk=*/4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          traced[k] =
              trace_streamline(u, v, seeds[k].first, seeds[k].second, options);
        }
      });

  std::vector<Streamline> out;
  for (Streamline& line : traced) {
    if (line.size() >= min_points) out.push_back(std::move(line));
  }
  return out;
}

}  // namespace adaptviz
