#include "vis/renderer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel_for.hpp"
#include "vis/contour.hpp"
#include "vis/streamlines.hpp"
#include "vis/volume.hpp"
#include "weather/domain_io.hpp"
#include "weather/geography.hpp"

namespace adaptviz {
namespace {

Field2D diagnostic(const DomainState& s, RenderField field) {
  switch (field) {
    case RenderField::kPressure:
      return s.pressure_field();
    case RenderField::kWindSpeed:
      return s.wind_speed();
    case RenderField::kVorticity:
      return s.vorticity();
    case RenderField::kHeight:
      return s.h;
  }
  return s.h;
}

struct ValueRange {
  double lo, hi;
};

ValueRange robust_range(const Field2D& f) {
  double lo = f.min();
  double hi = f.max();
  if (hi - lo < 1e-12) {
    lo -= 1.0;
    hi += 1.0;
  }
  return {lo, hi};
}

}  // namespace

FrameRenderer::FrameRenderer(RenderOptions options) : options_(options) {}

Image FrameRenderer::render(const NclFile& frame,
                            const std::vector<TrackPoint>* track) const {
  obs::ScopedSpan span("vis.render");
  obs::count("vis.frames_rendered");
  const DomainState parent = decode_domain(frame, "parent");
  const GridSpec& g = parent.grid;
  const std::size_t w = options_.width;
  const std::size_t h = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(
             static_cast<double>(w) * g.extent_lat() / g.extent_lon())));
  Image img(w, h, Rgb{10, 10, 20});

  std::optional<DomainState> nest;
  if (has_domain(frame, "nest")) nest = decode_domain(frame, "nest");

  const Field2D pfield = diagnostic(parent, options_.field);
  // Perturbation pressure uses a diverging map centred on the undisturbed
  // environment: ambient air is near-white, the depression deep blue.
  const Field2D range_field =
      options_.field == RenderField::kPressure ? smooth(pfield, 0) : pfield;
  const ValueRange range =
      options_.field == RenderField::kPressure
          ? ValueRange{kEnvPressureHpa - 35.0, kEnvPressureHpa + 35.0}
          : robust_range(range_field);
  std::optional<Field2D> nfield;
  if (nest) nfield = diagnostic(*nest, options_.field);

  const Colormap fieldmap = options_.field == RenderField::kPressure
                                ? Colormap::diverging_blue_red()
                                : Colormap::viridis();
  const Colormap terrain = Colormap::terrain();

  // Pixel -> lat/lon mapping (y axis flipped: image top = north).
  auto lon_of_px = [&](std::size_t x) {
    return g.lon0() + (static_cast<double>(x) + 0.5) / static_cast<double>(w) *
                          g.extent_lon();
  };
  auto lat_of_px = [&](std::size_t y) {
    return g.lat0() + (1.0 - (static_cast<double>(y) + 0.5) /
                                 static_cast<double>(h)) *
                          g.extent_lat();
  };
  auto px_of_lon = [&](double lon) {
    return static_cast<long>(std::lround((lon - g.lon0()) / g.extent_lon() *
                                         static_cast<double>(w)));
  };
  auto py_of_lat = [&](double lat) {
    return static_cast<long>(std::lround(
        (1.0 - (lat - g.lat0()) / g.extent_lat()) * static_cast<double>(h)));
  };

  // --- Base: terrain + pseudocolor (parallel over horizontal bands) ---
  auto render_rows = [&](std::size_t y_begin, std::size_t y_end) {
    for (std::size_t y = y_begin; y < y_end; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const LatLon p{lat_of_px(y), lon_of_px(x)};
        const double land = land_fraction(p);
        img.at(x, y) = terrain.sample(0.15 + 0.7 * land);

        // Field value: nest data where available, else parent.
        double v;
        if (nest && nfield && nest->grid.contains(p)) {
          v = nfield->sample(nest->grid.x_of_lon(p.lon),
                             nest->grid.y_of_lat(p.lat));
        } else {
          v = pfield.sample(g.x_of_lon(p.lon), g.y_of_lat(p.lat));
        }
        img.blend(static_cast<long>(x), static_cast<long>(y),
                  fieldmap.map(v, range.lo, range.hi), options_.field_alpha);
      }
    }
  };
  // Disjoint row bands on the shared persistent pool: no synchronization
  // needed, and no threads spawned per frame.
  {
    obs::ScopedSpan base_span("vis.render.base");
    parallel_for_rows(0, h, options_.threads, render_rows);
  }

  // --- Contours of the parent field ---
  if (options_.draw_contours && options_.contour_levels > 0) {
    std::vector<double> levels;
    for (int k = 1; k <= options_.contour_levels; ++k) {
      levels.push_back(range.lo + (range.hi - range.lo) * k /
                                      (options_.contour_levels + 1));
    }
    const Rgb ink{30, 30, 30};
    for (const ContourSegment& seg : marching_squares(pfield, levels)) {
      // Grid coords -> pixels.
      auto to_px = [&](double gx, double gy, long& px, long& py) {
        const double lon =
            g.lon0() + gx / static_cast<double>(g.nx() - 1) * g.extent_lon();
        const double lat =
            g.lat0() + gy / static_cast<double>(g.ny() - 1) * g.extent_lat();
        px = px_of_lon(lon);
        py = py_of_lat(lat);
      };
      long x0, y0, x1, y1;
      to_px(seg.x0, seg.y0, x0, y0);
      to_px(seg.x1, seg.y1, x1, y1);
      img.draw_line(x0, y0, x1, y1, ink);
    }
  }

  // --- Oriented wind glyphs ---
  if (options_.draw_glyphs) {
    const Rgb ink{240, 240, 240};
    const int sp = std::max(8, options_.glyph_spacing_px);
    for (std::size_t y = sp / 2; y < h; y += sp) {
      for (std::size_t x = sp / 2; x < w; x += sp) {
        const LatLon p{lat_of_px(y), lon_of_px(x)};
        const double u = parent.u.sample(g.x_of_lon(p.lon), g.y_of_lat(p.lat));
        const double v = parent.v.sample(g.x_of_lon(p.lon), g.y_of_lat(p.lat));
        const double speed = std::hypot(u, v);
        if (speed < 0.5) continue;
        const double scale =
            std::min(1.0, speed / 25.0) * (sp * 0.45) / speed;
        const long dx = static_cast<long>(std::lround(u * scale));
        const long dy = static_cast<long>(std::lround(-v * scale));
        img.draw_line(static_cast<long>(x) - dx, static_cast<long>(y) - dy,
                      static_cast<long>(x) + dx, static_cast<long>(y) + dy,
                      ink);
        // Arrow head: a dot at the tip.
        img.set(static_cast<long>(x) + dx, static_cast<long>(y) + dy,
                Rgb{255, 90, 90});
      }
    }
  }

  // --- Volume-rendered cloud layer ---
  if (options_.draw_cloud_volume) {
    composite_volume(img, cloud_volume_from_state(parent), {},
                     options_.threads);
  }

  // --- Wind streamlines ---
  if (options_.draw_streamlines) {
    const Rgb ink{250, 250, 250};
    auto gx_to_px = [&](double gx) {
      const double lon =
          g.lon0() + gx / static_cast<double>(g.nx() - 1) * g.extent_lon();
      return px_of_lon(lon);
    };
    auto gy_to_py = [&](double gy) {
      const double lat =
          g.lat0() + gy / static_cast<double>(g.ny() - 1) * g.extent_lat();
      return py_of_lat(lat);
    };
    for (const Streamline& line :
         streamline_field(parent.u, parent.v,
                          options_.streamline_spacing_cells,
                          /*min_points=*/8, StreamlineOptions{},
                          options_.threads)) {
      for (std::size_t k = 1; k < line.size(); ++k) {
        img.draw_line(gx_to_px(line[k - 1].first),
                      gy_to_py(line[k - 1].second), gx_to_px(line[k].first),
                      gy_to_py(line[k].second), ink);
      }
    }
  }

  // --- Nest outline ---
  if (options_.draw_nest_box && nest) {
    const GridSpec& ng = nest->grid;
    const long x0 = px_of_lon(ng.lon0());
    const long x1 = px_of_lon(ng.lon0() + ng.extent_lon());
    const long y0 = py_of_lat(ng.lat0() + ng.extent_lat());
    const long y1 = py_of_lat(ng.lat0());
    const Rgb box{255, 255, 80};
    img.draw_line(x0, y0, x1, y0, box);
    img.draw_line(x1, y0, x1, y1, box);
    img.draw_line(x1, y1, x0, y1, box);
    img.draw_line(x0, y1, x0, y0, box);
  }

  // --- Track polyline up to the frame time ---
  const double frame_time = attr_double(frame, "sim_time_seconds");
  if (options_.draw_track && track != nullptr && track->size() > 1) {
    const Rgb ink{255, 230, 60};
    for (std::size_t k = 1; k < track->size(); ++k) {
      if ((*track)[k].time.seconds() > frame_time) break;
      img.draw_line(px_of_lon((*track)[k - 1].eye.lon),
                    py_of_lat((*track)[k - 1].eye.lat),
                    px_of_lon((*track)[k].eye.lon),
                    py_of_lat((*track)[k].eye.lat), ink);
    }
  }

  // --- Eye marker ---
  if (options_.draw_eye) {
    const double lat = attr_double(frame, "eye_lat");
    const double lon = attr_double(frame, "eye_lon");
    img.draw_disc(px_of_lon(lon), py_of_lat(lat), 3, Rgb{255, 40, 40});
  }

  return img;
}

}  // namespace adaptviz
