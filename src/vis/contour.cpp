#include "vis/contour.hpp"

#include <cmath>

namespace adaptviz {
namespace {

// Linear interpolation of the crossing position between two corner values.
double crossing(double a, double b, double iso) {
  const double d = b - a;
  if (std::fabs(d) < 1e-30) return 0.5;
  double t = (iso - a) / d;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return t;
}

}  // namespace

std::vector<ContourSegment> marching_squares(const Field2D& f, double iso) {
  std::vector<ContourSegment> out;
  if (f.nx() < 2 || f.ny() < 2) return out;

  for (std::size_t j = 0; j + 1 < f.ny(); ++j) {
    for (std::size_t i = 0; i + 1 < f.nx(); ++i) {
      // Corners: 0=(i,j) 1=(i+1,j) 2=(i+1,j+1) 3=(i,j+1).
      const double v0 = f(i, j);
      const double v1 = f(i + 1, j);
      const double v2 = f(i + 1, j + 1);
      const double v3 = f(i, j + 1);
      if (std::isnan(v0) || std::isnan(v1) || std::isnan(v2) ||
          std::isnan(v3)) {
        continue;
      }
      int mask = 0;
      if (v0 >= iso) mask |= 1;
      if (v1 >= iso) mask |= 2;
      if (v2 >= iso) mask |= 4;
      if (v3 >= iso) mask |= 8;
      if (mask == 0 || mask == 15) continue;

      const double x = static_cast<double>(i);
      const double y = static_cast<double>(j);
      // Edge midpoints with interpolation:
      // bottom (0-1), right (1-2), top (3-2), left (0-3).
      const double bx = x + crossing(v0, v1, iso);
      const double rx = x + 1.0;
      const double ry = y + crossing(v1, v2, iso);
      const double tx = x + crossing(v3, v2, iso);
      const double ty = y + 1.0;
      const double ly = y + crossing(v0, v3, iso);

      auto seg = [&out](double ax, double ay, double bx2, double by2) {
        out.push_back(ContourSegment{ax, ay, bx2, by2});
      };

      switch (mask) {
        case 1:
        case 14:
          seg(bx, y, x, ly);
          break;
        case 2:
        case 13:
          seg(bx, y, rx, ry);
          break;
        case 3:
        case 12:
          seg(x, ly, rx, ry);
          break;
        case 4:
        case 11:
          seg(rx, ry, tx, ty);
          break;
        case 6:
        case 9:
          seg(bx, y, tx, ty);
          break;
        case 7:
        case 8:
          seg(x, ly, tx, ty);
          break;
        case 5:
        case 10: {
          // Saddle: disambiguate with the cell average.
          const double avg = 0.25 * (v0 + v1 + v2 + v3);
          const bool center_high = avg >= iso;
          if ((mask == 5) == center_high) {
            seg(bx, y, rx, ry);
            seg(x, ly, tx, ty);
          } else {
            seg(bx, y, x, ly);
            seg(rx, ry, tx, ty);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return out;
}

std::vector<ContourSegment> marching_squares(const Field2D& field,
                                             const std::vector<double>& isos) {
  std::vector<ContourSegment> out;
  for (double iso : isos) {
    auto segs = marching_squares(field, iso);
    out.insert(out.end(), segs.begin(), segs.end());
  }
  return out;
}

}  // namespace adaptviz
