// Volume rendering (emission-absorption ray marching).
//
// The paper lists "volume rendering" among the VisIt techniques used on the
// WRF output. The shallow-water state is two-dimensional, so a synthetic
// cloud volume is diagnosed from it the way satellite-style renderings of
// single-layer models do: convective cloud depth grows with the height
// depression (deeper storm -> taller convection, capped at the tropopause)
// and density with the low-level wind speed. The volume is then composited
// front-to-back along sheared parallel rays (a tilted satellite view) with
// the classic emission-absorption model:
//
//     C_out = C_in + T * (1 - exp(-sigma * rho * ds)) * C_cloud
//     T    *= exp(-sigma * rho * ds)
#pragma once

#include "vis/image.hpp"
#include "weather/state.hpp"

namespace adaptviz {

/// Regular (nx, ny, nz) scalar volume, z = 0 at the surface.
class VolumeGrid {
 public:
  VolumeGrid(std::size_t nx, std::size_t ny, std::size_t nz,
             double fill = 0.0);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }

  double& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(k * ny_ + j) * nx_ + i];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(k * ny_ + j) * nx_ + i];
  }

  /// Trilinear sample at fractional coordinates; zero outside the volume.
  [[nodiscard]] double sample(double x, double y, double z) const;

 private:
  std::size_t nx_, ny_, nz_;
  std::vector<double> data_;
};

struct CloudVolumeOptions {
  std::size_t levels = 16;          // vertical resolution
  double max_density = 1.0;         // at the deepest depression
  /// Height anomaly (m, negative) at which cloud tops reach the model top.
  double saturation_anomaly_m = -150.0;
  /// Depressions shallower than this (m) carry no convection (far-field
  /// tails of the vortex profile are not cloud).
  double min_anomaly_m = 10.0;
};

/// Diagnoses a cloud-density volume from a shallow-water state.
VolumeGrid cloud_volume_from_state(const DomainState& state,
                                   const CloudVolumeOptions& options = {});

struct VolumeRenderOptions {
  /// Oblique parallel projection: cloud tops are displaced this many grid
  /// cells toward the image top (north) relative to the surface
  /// (0 = straight down).
  double shear_cells = 6.0;
  /// Extinction coefficient per unit density per level.
  double extinction = 0.35;
  Rgb cloud_color{245, 245, 248};
};

/// Composites the volume over an existing image (which must map 1 image
/// pixel : (nx/width) grid cells, i.e. the renderer's own geometry; the
/// image is typically a pseudocolor base layer). Rays are independent per
/// pixel; `threads > 1` splits the image rows across the shared pool with
/// bitwise-identical results.
void composite_volume(Image& image, const VolumeGrid& volume,
                      const VolumeRenderOptions& options = {},
                      int threads = 1);

}  // namespace adaptviz
