// Streamline tracing for wind-field visualization.
//
// The paper visualizes WRF output with "vector plots employing oriented
// glyphs"; streamlines are the continuous companion: integral curves of the
// wind field, traced here with a midpoint (RK2) integrator in fractional
// grid coordinates. The renderer overlays them on wind-speed views.
#pragma once

#include <vector>

#include "weather/grid.hpp"

namespace adaptviz {

struct StreamlineOptions {
  /// Integration step as a fraction of a grid cell.
  double step_cells = 0.4;
  /// Maximum number of integration steps per line (per direction).
  int max_steps = 600;
  /// Stop when the local speed drops below this (m/s): stagnation.
  double min_speed = 0.2;
};

/// One polyline in fractional grid coordinates.
using Streamline = std::vector<std::pair<double, double>>;

/// Traces a streamline of (u, v) through `seed` (fractional grid coords),
/// integrating both downstream and upstream. Fields must share a shape; the
/// trace stops at the domain edge, at stagnation, or at max_steps.
Streamline trace_streamline(const Field2D& u, const Field2D& v,
                            double seed_x, double seed_y,
                            const StreamlineOptions& options = {});

/// Traces a grid of seeds (spacing in cells) and returns all lines with at
/// least `min_points` vertices. Seeds are independent; `threads > 1`
/// traces them in chunks on the shared pool (line lengths vary wildly, so
/// scheduling is dynamic). The returned lines are in seed order regardless
/// of the thread count.
std::vector<Streamline> streamline_field(const Field2D& u, const Field2D& v,
                                         double seed_spacing_cells,
                                         std::size_t min_points = 8,
                                         const StreamlineOptions& options = {},
                                         int threads = 1);

}  // namespace adaptviz
