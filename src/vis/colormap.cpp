#include "vis/colormap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaptviz {

Colormap::Colormap(std::vector<Rgb> stops) : stops_(std::move(stops)) {
  if (stops_.size() < 2) {
    throw std::invalid_argument("Colormap: need >= 2 stops");
  }
}

Colormap Colormap::viridis() {
  return Colormap({{68, 1, 84},
                   {59, 82, 139},
                   {33, 145, 140},
                   {94, 201, 98},
                   {253, 231, 37}});
}

Colormap Colormap::diverging_blue_red() {
  return Colormap({{33, 102, 172},
                   {146, 197, 222},
                   {247, 247, 247},
                   {244, 165, 130},
                   {178, 24, 43}});
}

Colormap Colormap::terrain() {
  return Colormap({{22, 58, 112},    // deep ocean
                   {66, 122, 170},   // shallow ocean
                   {171, 203, 180},  // coast
                   {120, 152, 96},   // lowland
                   {150, 132, 100}});  // hills
}

Rgb Colormap::sample(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * static_cast<double>(stops_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, stops_.size() - 1);
  const double f = pos - static_cast<double>(lo);
  const Rgb a = stops_[lo];
  const Rgb b = stops_[hi];
  return Rgb{
      static_cast<std::uint8_t>(std::lround(a.r + f * (b.r - a.r))),
      static_cast<std::uint8_t>(std::lround(a.g + f * (b.g - a.g))),
      static_cast<std::uint8_t>(std::lround(a.b + f * (b.b - a.b)))};
}

Rgb Colormap::map(double v, double lo, double hi) const {
  if (hi <= lo) return sample(0.5);
  return sample((v - lo) / (hi - lo));
}

}  // namespace adaptviz
