#include "vis/volume.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/parallel_for.hpp"

namespace adaptviz {

VolumeGrid::VolumeGrid(std::size_t nx, std::size_t ny, std::size_t nz,
                       double fill)
    : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("VolumeGrid: empty dimension");
  }
}

double VolumeGrid::sample(double x, double y, double z) const {
  if (x < 0 || y < 0 || z < 0 || x > static_cast<double>(nx_ - 1) ||
      y > static_cast<double>(ny_ - 1) || z > static_cast<double>(nz_ - 1)) {
    return 0.0;
  }
  const std::size_t x0 = static_cast<std::size_t>(x);
  const std::size_t y0 = static_cast<std::size_t>(y);
  const std::size_t z0 = static_cast<std::size_t>(z);
  const std::size_t x1 = std::min(x0 + 1, nx_ - 1);
  const std::size_t y1 = std::min(y0 + 1, ny_ - 1);
  const std::size_t z1 = std::min(z0 + 1, nz_ - 1);
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  const double fz = z - static_cast<double>(z0);
  auto lerp = [](double a, double b, double f) { return a + f * (b - a); };
  const double c00 = lerp(at(x0, y0, z0), at(x1, y0, z0), fx);
  const double c10 = lerp(at(x0, y1, z0), at(x1, y1, z0), fx);
  const double c01 = lerp(at(x0, y0, z1), at(x1, y0, z1), fx);
  const double c11 = lerp(at(x0, y1, z1), at(x1, y1, z1), fx);
  return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
}

VolumeGrid cloud_volume_from_state(const DomainState& state,
                                   const CloudVolumeOptions& opt) {
  const GridSpec& g = state.grid;
  VolumeGrid vol(g.nx(), g.ny(), opt.levels);
  const double nz = static_cast<double>(opt.levels - 1);
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      // Convection where the layer is depressed; cloud-top fraction of the
      // column grows with the depression depth.
      const double depression = std::max(0.0, -state.h(i, j));
      if (depression <= opt.min_anomaly_m) continue;
      const double top_frac = std::min(
          1.0, depression / std::fabs(opt.saturation_anomaly_m));
      const double density =
          opt.max_density * std::min(1.0, depression /
                                              std::fabs(opt.saturation_anomaly_m));
      const double top_level = top_frac * nz;
      for (std::size_t k = 0; k < opt.levels; ++k) {
        const double z = static_cast<double>(k);
        if (z > top_level) break;
        // Denser at cloud base, thinning toward the anvil.
        vol.at(i, j, k) =
            density * (1.0 - 0.5 * z / std::max(top_level, 1e-9));
      }
    }
  }
  return vol;
}

void composite_volume(Image& image, const VolumeGrid& volume,
                      const VolumeRenderOptions& opt, int threads) {
  obs::ScopedSpan span("vis.volume");
  const double sx = static_cast<double>(volume.nx() - 1) /
                    static_cast<double>(image.width() - 1);
  const double sy = static_cast<double>(volume.ny() - 1) /
                    static_cast<double>(image.height() - 1);
  const double nz = static_cast<double>(volume.nz() - 1);

  // Each pixel's ray is independent and writes only its own pixel, so row
  // bands parallelize with no synchronization.
  auto composite_rows = [&](std::size_t row_begin, std::size_t row_end) {
  for (std::size_t py = row_begin; py < row_end; ++py) {
    for (std::size_t px = 0; px < image.width(); ++px) {
      const double gx = static_cast<double>(px) * sx;
      // Image rows run north->south; volume j runs south->north.
      const double gy_surface =
          static_cast<double>(volume.ny() - 1) -
          static_cast<double>(py) * sy;

      // Front-to-back from the volume top: the viewer looks down a sheared
      // ray; a cell at level k appears shifted north by shear * (k / nz).
      double transmittance = 1.0;
      double cloud = 0.0;  // accumulated cloud opacity contribution
      for (double k = nz; k >= 0.0; k -= 1.0) {
        const double gy = gy_surface - opt.shear_cells * (k / nz);
        const double rho = volume.sample(gx, gy, k);
        if (rho <= 0.0) continue;
        const double absorb = 1.0 - std::exp(-opt.extinction * rho);
        cloud += transmittance * absorb;
        transmittance *= 1.0 - absorb;
        if (transmittance < 0.01) break;
      }
      if (cloud > 0.003) {
        image.blend(static_cast<long>(px), static_cast<long>(py),
                    opt.cloud_color, std::min(1.0, cloud));
      }
    }
  }
  };  // composite_rows
  parallel_for_rows(0, image.height(), threads, composite_rows);
}

}  // namespace adaptviz
