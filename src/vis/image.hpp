// RGB raster image with PPM output.
//
// Stands in for the VisIt rendering backend: everything the examples draw
// (pseudocolor, contours, wind glyphs, cyclone tracks) rasterizes into this
// buffer and is written as binary PPM (P6) — viewable everywhere, zero
// dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adaptviz {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  friend bool operator==(Rgb, Rgb) = default;
};

class Image {
 public:
  Image(std::size_t width, std::size_t height, Rgb fill = {0, 0, 0});

  [[nodiscard]] std::size_t width() const { return w_; }
  [[nodiscard]] std::size_t height() const { return h_; }

  /// (0,0) is the top-left pixel.
  Rgb& at(std::size_t x, std::size_t y) { return px_[y * w_ + x]; }
  [[nodiscard]] Rgb at(std::size_t x, std::size_t y) const {
    return px_[y * w_ + x];
  }

  /// Ignores out-of-bounds coordinates (handy for overlays).
  void set(long x, long y, Rgb c);

  /// Alpha-blends `c` over the current pixel (alpha in [0,1]).
  void blend(long x, long y, Rgb c, double alpha);

  /// Bresenham line segment.
  void draw_line(long x0, long y0, long x1, long y1, Rgb c);

  /// Filled disc of the given radius.
  void draw_disc(long cx, long cy, long radius, Rgb c);

  /// Binary PPM (P6).
  void save_ppm(const std::string& path) const;
  [[nodiscard]] std::string encode_ppm() const;

 private:
  std::size_t w_, h_;
  std::vector<Rgb> px_;
};

}  // namespace adaptviz
