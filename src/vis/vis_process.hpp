// Visualization process at the remote site.
//
// Consumes frames handed over by the frame receiver, charges a render cost
// (the paper used a GeForce 7800 GTX workstation with VisIt's hardware
// acceleration: seconds per frame), records the visualization-progress
// series that Fig. 7 plots (wall-clock time of visualization vs. the
// simulated time the frame represents), and — when frames carry real field
// payloads — renders images to disk.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dataio/frame.hpp"
#include "resources/event_queue.hpp"
#include "vis/renderer.hpp"

namespace adaptviz {

struct VisRecord {
  WallSeconds wall_time{};   // when the frame was visualized
  SimSeconds sim_time{};     // simulated time the frame represents
  std::int64_t sequence = 0;
  Bytes size{};
};

class VisualizationProcess {
 public:
  struct Options {
    /// Render cost model: fixed setup plus per-gigabyte scan cost.
    double fixed_seconds = 1.0;
    double seconds_per_gb = 3.0;
    /// When set, frames with payloads are rendered to `output_dir` as
    /// frame_<seq>.ppm.
    bool render_images = false;
    std::string output_dir;
    RenderOptions render_options{};
    /// Invoked for every visualized frame (computational steering hooks in
    /// here; see steering/steering.hpp).
    std::function<void(const Frame&, const VisRecord&)> on_frame;
  };

  VisualizationProcess(EventQueue& queue, Options options);

  /// FrameReceiver::VisualizeFn: records progress, optionally renders, and
  /// returns the frame's render cost. Equivalent to render_frame() followed
  /// by record().
  WallSeconds visualize(const Frame& frame);

  /// The heavy half: renders the frame image to disk when `render_images`
  /// is set (no-op otherwise). Touches no process state, so concurrent
  /// calls on different frames are safe — the FrameReceiver runs these on
  /// the shared thread pool, one per busy render slot.
  void render_frame(const Frame& frame) const;

  /// The bookkeeping half: appends the progress record, fires steering
  /// hooks, and returns the frame's modeled render cost. Serial only (call
  /// from the event loop).
  WallSeconds record(const Frame& frame);

  [[nodiscard]] const std::vector<VisRecord>& records() const {
    return records_;
  }
  /// Simulated time of the newest visualized frame (Fig. 7's y-axis head).
  [[nodiscard]] SimSeconds latest_visualized_sim_time() const;

  /// The progress series is the process's only mutable state.
  struct State {
    std::vector<VisRecord> records;
  };
  [[nodiscard]] State snapshot() const { return State{records_}; }
  void restore(const State& s) { records_ = s.records; }

 private:
  EventQueue& queue_;
  Options options_;
  std::vector<VisRecord> records_;
};

}  // namespace adaptviz
