#include "steering/control_plane.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace adaptviz {

namespace {

// ---- exact-round-trip primitives (steering_log.jsonl layer) ----
//
// Free-form strings travel percent-encoded so a value never contains a
// quote, comma, brace or newline; doubles travel as hexfloats, whose
// alphabet ([0-9a-fx.+-p]) needs no encoding. Both survive the line/JSON
// layer byte-exactly.

bool unreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

std::string percent_encode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (unreserved(static_cast<char>(c))) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string percent_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) {
      throw std::runtime_error("steering log: truncated percent escape in '" +
                               s + "'");
    }
    const int hi = hex_nibble(s[i + 1]);
    const int lo = hex_nibble(s[i + 2]);
    if (hi < 0 || lo < 0) {
      throw std::runtime_error("steering log: bad percent escape in '" + s +
                               "'");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_double(const std::string& s) {
  if (s.empty()) throw std::runtime_error("steering log: empty number");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw std::runtime_error("steering log: malformed number '" + s + "'");
  }
  return v;
}

/// Minimal writer for the flat all-strings JSON object a log line is.
class LineWriter {
 public:
  void raw(const char* key, const std::string& value) {
    out_ += out_.empty() ? "{\"" : ",\"";
    out_ += key;
    out_ += "\":\"";
    out_ += value;
    out_ += '"';
  }
  void str(const char* key, const std::string& value) {
    raw(key, percent_encode(value));
  }
  void num(const char* key, double value) { raw(key, hex_double(value)); }
  [[nodiscard]] std::string finish() { return out_ + "}"; }

 private:
  std::string out_;
};

/// Parses `{"k":"v",...}` into a key→value map. Values are the raw
/// (still-encoded) strings; keys must be unique.
std::map<std::string, std::string> parse_line(const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("steering log: " + why + " in '" + line + "'");
  };
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') fail("missing '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return out;  // empty object
  while (true) {
    skip_ws();
    // "key"
    if (i >= line.size() || line[i] != '"') fail("expected key quote");
    const std::size_t key_start = ++i;
    while (i < line.size() && line[i] != '"') ++i;
    if (i >= line.size()) fail("unterminated key");
    const std::string key = line.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= line.size() || line[i] != ':') fail("expected ':'");
    ++i;
    skip_ws();
    if (i >= line.size() || line[i] != '"') fail("expected value quote");
    const std::size_t val_start = ++i;
    while (i < line.size() && line[i] != '"') ++i;
    if (i >= line.size()) fail("unterminated value");
    const std::string value = line.substr(val_start, i - val_start);
    ++i;
    if (!out.emplace(key, value).second) fail("duplicate key '" + key + "'");
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') break;
    fail("expected ',' or '}'");
  }
  return out;
}

SteeringCommand::Kind command_kind_from(const std::string& name) {
  if (name == "set-output-bounds") return SteeringCommand::Kind::kSetOutputBounds;
  if (name == "set-resolution-floor") {
    return SteeringCommand::Kind::kSetResolutionFloor;
  }
  if (name == "set-nest-extent") return SteeringCommand::Kind::kSetNestExtent;
  if (name == "pause") return SteeringCommand::Kind::kPause;
  if (name == "resume") return SteeringCommand::Kind::kResume;
  throw std::runtime_error("steering log: unknown command kind '" + name +
                           "'");
}

}  // namespace

void validate(const ViewCommand& view) {
  if (view.field.empty()) {
    throw std::invalid_argument("view command: empty field");
  }
  if (view.colormap.empty()) {
    throw std::invalid_argument("view command: empty colormap");
  }
  if (!(view.zoom > 0.0)) {
    throw std::invalid_argument("view command: zoom must be > 0");
  }
  if (view.center_lat < -90.0 || view.center_lat > 90.0) {
    throw std::invalid_argument("view command: center_lat outside [-90, 90]");
  }
  if (view.center_lon < -180.0 || view.center_lon > 180.0) {
    throw std::invalid_argument(
        "view command: center_lon outside [-180, 180]");
  }
}

std::string view_key(const ViewCommand& view) {
  static const ViewCommand kDefault{};
  if (view.field == kDefault.field && view.colormap == kDefault.colormap &&
      view.zoom == kDefault.zoom && view.center_lat == kDefault.center_lat &&
      view.center_lon == kDefault.center_lon) {
    return "";
  }
  // Hexfloats: views equal bit-for-bit share a render, nothing else does.
  return percent_encode(view.field) + "/" + percent_encode(view.colormap) +
         "/" + hex_double(view.zoom) + "/" + hex_double(view.center_lat) +
         "/" + hex_double(view.center_lon);
}

void validate(const KnobProposal& proposal) {
  if (proposal.max_output_interval.seconds() < 0) {
    throw std::invalid_argument(
        "knob proposal: negative max_output_interval");
  }
  if (proposal.resolution_floor_km < 0) {
    throw std::invalid_argument("knob proposal: negative resolution_floor_km");
  }
}

void validate(const ObserverSpec& spec) {
  if (spec.mode != "live-tail" && spec.mode != "catch-up") {
    throw std::invalid_argument("observer spec: mode must be live-tail or "
                                "catch-up, got '" +
                                spec.mode + "'");
  }
  if (!(spec.downlink_mbps > 0.0)) {
    throw std::invalid_argument("observer spec: downlink_mbps must be > 0");
  }
  if (spec.catchup_start_hours < 0.0) {
    throw std::invalid_argument(
        "observer spec: negative catchup_start_hours");
  }
}

const char* to_string(SteeringEvent::Type type) {
  switch (type) {
    case SteeringEvent::Type::kCommand:
      return "command";
    case SteeringEvent::Type::kView:
      return "view";
    case SteeringEvent::Type::kProposal:
      return "proposal";
    case SteeringEvent::Type::kAttach:
      return "attach";
    case SteeringEvent::Type::kDetach:
      return "detach";
  }
  return "?";
}

SteeringEvent::Type steering_event_type_from(const std::string& name) {
  if (name == "command") return SteeringEvent::Type::kCommand;
  if (name == "view") return SteeringEvent::Type::kView;
  if (name == "proposal") return SteeringEvent::Type::kProposal;
  if (name == "attach") return SteeringEvent::Type::kAttach;
  if (name == "detach") return SteeringEvent::Type::kDetach;
  throw std::runtime_error("steering log: unknown event type '" + name + "'");
}

void validate(const SteeringEvent& event) {
  if (event.wall.seconds() < 0) {
    throw std::invalid_argument("steering event: negative wall time");
  }
  switch (event.type) {
    case SteeringEvent::Type::kCommand:
      validate(event.command);
      break;
    case SteeringEvent::Type::kView:
      validate(event.view);
      break;
    case SteeringEvent::Type::kProposal:
      validate(event.proposal);
      break;
    case SteeringEvent::Type::kAttach:
      if (event.client.empty()) {
        throw std::invalid_argument("steering event: attach needs a client");
      }
      validate(event.attach);
      break;
    case SteeringEvent::Type::kDetach:
      if (event.client.empty()) {
        throw std::invalid_argument("steering event: detach needs a client");
      }
      break;
  }
}

std::string to_jsonl(const SteeringEvent& e) {
  LineWriter w;
  w.num("wall", e.wall.seconds());
  w.str("client", e.client);
  w.raw("type", to_string(e.type));
  switch (e.type) {
    case SteeringEvent::Type::kCommand:
      w.raw("kind", to_string(e.command.kind));
      w.num("bounds_min_s", e.command.bounds.min_output_interval.seconds());
      w.num("bounds_max_s", e.command.bounds.max_output_interval.seconds());
      w.num("floor_km", e.command.resolution_floor_km);
      w.num("nest_deg", e.command.nest_extent_deg);
      w.num("auto_resume_s", e.command.auto_resume_after.seconds());
      w.str("reason", e.command.reason);
      break;
    case SteeringEvent::Type::kView:
      w.str("field", e.view.field);
      w.str("colormap", e.view.colormap);
      w.num("zoom", e.view.zoom);
      w.num("lat", e.view.center_lat);
      w.num("lon", e.view.center_lon);
      break;
    case SteeringEvent::Type::kProposal:
      w.num("max_oi_s", e.proposal.max_output_interval.seconds());
      w.num("floor_km", e.proposal.resolution_floor_km);
      w.str("reason", e.proposal.reason);
      break;
    case SteeringEvent::Type::kAttach:
      w.raw("mode", e.attach.mode);
      w.num("downlink_mbps", e.attach.downlink_mbps);
      w.num("catchup_start_h", e.attach.catchup_start_hours);
      break;
    case SteeringEvent::Type::kDetach:
      break;
  }
  return w.finish();
}

SteeringEvent steering_event_from_jsonl(const std::string& line) {
  std::map<std::string, std::string> kv = parse_line(line);
  auto take = [&](const char* key) {
    auto it = kv.find(key);
    if (it == kv.end()) {
      throw std::runtime_error(std::string("steering log: missing key '") +
                               key + "' in '" + line + "'");
    }
    std::string v = std::move(it->second);
    kv.erase(it);
    return v;
  };
  SteeringEvent e;
  e.wall = WallSeconds(parse_double(take("wall")));
  e.client = percent_decode(take("client"));
  e.type = steering_event_type_from(take("type"));
  switch (e.type) {
    case SteeringEvent::Type::kCommand:
      e.command.kind = command_kind_from(take("kind"));
      e.command.bounds.min_output_interval =
          SimSeconds(parse_double(take("bounds_min_s")));
      e.command.bounds.max_output_interval =
          SimSeconds(parse_double(take("bounds_max_s")));
      e.command.resolution_floor_km = parse_double(take("floor_km"));
      e.command.nest_extent_deg = parse_double(take("nest_deg"));
      e.command.auto_resume_after =
          WallSeconds(parse_double(take("auto_resume_s")));
      e.command.reason = percent_decode(take("reason"));
      break;
    case SteeringEvent::Type::kView:
      e.view.field = percent_decode(take("field"));
      e.view.colormap = percent_decode(take("colormap"));
      e.view.zoom = parse_double(take("zoom"));
      e.view.center_lat = parse_double(take("lat"));
      e.view.center_lon = parse_double(take("lon"));
      break;
    case SteeringEvent::Type::kProposal:
      e.proposal.max_output_interval =
          SimSeconds(parse_double(take("max_oi_s")));
      e.proposal.resolution_floor_km = parse_double(take("floor_km"));
      e.proposal.reason = percent_decode(take("reason"));
      break;
    case SteeringEvent::Type::kAttach:
      e.attach.mode = take("mode");
      e.attach.downlink_mbps = parse_double(take("downlink_mbps"));
      e.attach.catchup_start_hours = parse_double(take("catchup_start_h"));
      break;
    case SteeringEvent::Type::kDetach:
      break;
  }
  if (!kv.empty()) {
    throw std::runtime_error("steering log: unknown key '" +
                             kv.begin()->first + "' in '" + line + "'");
  }
  return e;
}

void save_steering_log(const std::string& path,
                       const std::vector<SteeringEvent>& events) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("steering log: cannot write '" + path + "'");
  }
  for (const SteeringEvent& e : events) out << to_jsonl(e) << "\n";
  out.flush();
  if (!out) {
    throw std::runtime_error("steering log: write failed for '" + path + "'");
  }
}

std::vector<SteeringEvent> load_steering_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("steering log: cannot read '" + path + "'");
  }
  std::vector<SteeringEvent> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(steering_event_from_jsonl(line));
  }
  return out;
}

// ---- LocalControlPlane ----

LocalControlPlane::LocalControlPlane(EventQueue& queue, WallSeconds latency,
                                     ApplyFn apply)
    : queue_(queue), latency_(latency), apply_(std::move(apply)) {
  if (!apply_) {
    throw std::invalid_argument("LocalControlPlane: null apply fn");
  }
  if (latency_.seconds() < 0) {
    throw std::invalid_argument("LocalControlPlane: negative latency");
  }
}

ControlPlane::RunId LocalControlPlane::register_run(const std::string& label) {
  if (registered_) {
    throw std::invalid_argument(
        "LocalControlPlane: already fronting run '" + label_ + "'");
  }
  label_ = label;
  registered_ = true;
  return 0;
}

void LocalControlPlane::deregister_run(RunId) { registered_ = false; }

ClientId LocalControlPlane::attach(RunId run, const std::string& client,
                                   const ObserverSpec& spec) {
  SteeringEvent e;
  e.client = client;
  e.type = SteeringEvent::Type::kAttach;
  e.attach = spec;
  steer(run, std::move(e));
  names_.push_back(client);
  return ClientId{static_cast<std::int64_t>(names_.size()) - 1};
}

void LocalControlPlane::detach(RunId run, ClientId client) {
  if (client.value < 0 ||
      client.value >= static_cast<std::int64_t>(names_.size())) {
    throw std::invalid_argument("LocalControlPlane: unknown client id " +
                                std::to_string(client.value));
  }
  SteeringEvent e;
  e.client = names_[static_cast<std::size_t>(client.value)];
  e.type = SteeringEvent::Type::kDetach;
  steer(run, std::move(e));
}

void LocalControlPlane::steer(RunId, SteeringEvent event) {
  validate(event);
  ++sent_;
  // event.wall on an inbound event is an earliest-apply request; the
  // channel latency always applies on top of "now".
  WallSeconds deliver_at =
      std::max(queue_.now(), event.wall) + latency_;
  schedule_apply(deliver_at, std::move(event));
}

void LocalControlPlane::send_command(SteeringCommand command,
                                     WallSeconds extra_delay) {
  if (extra_delay.seconds() < 0) {
    throw std::invalid_argument("control plane: negative delay");
  }
  validate(command);
  ++sent_;
  ADAPTVIZ_LOG_INFO("steering", "[%s] %s queued (%s)",
                    hh_mm(queue_.now()).c_str(), to_string(command.kind),
                    command.reason.c_str());
  SteeringEvent e;
  e.type = SteeringEvent::Type::kCommand;
  e.command = std::move(command);
  schedule_apply(queue_.now() + extra_delay + latency_, std::move(e));
}

void LocalControlPlane::schedule_apply(WallSeconds at, SteeringEvent event) {
  if (at < last_delivery_) at = last_delivery_;  // in order
  last_delivery_ = at;
  event.wall = at;
  queue_.schedule_at(
      at,
      [this, event = std::move(event)] {
        ++applied_;
        apply_(event);
      },
      "steering.deliver");
}

void LocalControlPlane::schedule_replay(const SteeringEvent& event) {
  validate(event);
  ++sent_;
  queue_.schedule_at(
      event.wall,
      [this, event] {
        ++applied_;
        apply_(event);
      },
      "steering.replay");
}

void LocalControlPlane::observe(RunId, const SteeringObservation& obs) {
  for (const auto& sink : sinks_) sink(obs);
}

void LocalControlPlane::add_observation_sink(
    std::function<void(const SteeringObservation&)> sink) {
  sinks_.push_back(std::move(sink));
}

}  // namespace adaptviz
