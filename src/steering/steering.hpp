// Computational steering: the visualization site talks back.
//
// The paper's stated future work: "We also intend to investigate
// interactive simulation/visualization, so that user input based on the
// visualization can steer the simulation." This module implements that
// reverse path: a scientist (or an automated policy standing in for one)
// inspects frames as they are visualized and issues commands that travel
// back over the WAN to the simulation site, where the framework applies
// them — adjusting the visualization-frequency requirements the decision
// algorithms honour, capping how deep the resolution ladder may refine,
// resizing the moving nest, or pausing/resuming the run entirely.
//
// Commands are tiny (bytes), so the channel is latency-dominated rather
// than bandwidth-dominated; each command is delivered one WAN round-trip
// delay after it is issued.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/decision.hpp"
#include "resources/event_queue.hpp"

namespace adaptviz {

class LocalControlPlane;  // steering/control_plane.hpp

struct SteeringCommand {
  enum class Kind {
    /// Change the output-interval bounds the decision algorithms work
    /// within (e.g. "I need frames at least every 10 simulated minutes
    /// while the storm is near landfall").
    kSetOutputBounds,
    /// Do not refine below this resolution (budget guard: finer grids mean
    /// larger frames and slower steps).
    kSetResolutionFloor,
    /// Resize the moving nest footprint (degrees each way).
    kSetNestExtent,
    /// Hold the simulation (the scientist wants to catch up / inspect).
    kPause,
    /// Release a previous kPause.
    kResume,
  };

  Kind kind = Kind::kPause;
  DecisionBounds bounds{};            // kSetOutputBounds
  double resolution_floor_km = 0.0;   // kSetResolutionFloor
  double nest_extent_deg = 0.0;       // kSetNestExtent
  /// kPause only: automatically resume this long after the pause lands
  /// (zero = hold until an explicit kResume). A paused simulation produces
  /// no frames, so a frame-driven policy could otherwise never wake it.
  WallSeconds auto_resume_after{0.0};
  /// Free-form annotation carried for the experiment log.
  std::string reason;
};

const char* to_string(SteeringCommand::Kind kind);

/// Rejects malformed commands at the sending boundary, before they can
/// reach the decision algorithms: kSetOutputBounds with non-positive or
/// inverted bounds, negative resolution_floor_km / nest_extent_deg, and a
/// negative auto-resume delay all throw std::invalid_argument.
void validate(const SteeringCommand& command);

/// One-way control channel from the visualization site to the simulation
/// site. Commands arrive in order, each `latency` after being sent.
///
/// Deprecated shim: SteeringChannel is now a thin wrapper over
/// LocalControlPlane (steering/control_plane.hpp) — send()/send_after()
/// delegate to ControlPlane command events byte-for-byte (asserted by the
/// golden test in tests/test_steering.cpp). New code should speak
/// ControlPlane directly.
class SteeringChannel {
 public:
  using Handler = std::function<void(const SteeringCommand&)>;

  SteeringChannel(EventQueue& queue, WallSeconds latency, Handler handler);
  ~SteeringChannel();

  /// Enqueues a command for delivery (never blocks the caller). Throws
  /// std::invalid_argument on a malformed command (see validate()).
  void send(SteeringCommand command);

  /// Enqueues a command to be issued `extra_delay` from now (plus the
  /// channel latency). Lets a policy schedule its own follow-up — e.g.
  /// "pause now, resume in two hours" — without needing another frame to
  /// react to (a paused simulation produces none).
  void send_after(WallSeconds extra_delay, SteeringCommand command);

  [[nodiscard]] int commands_sent() const { return sent_; }
  [[nodiscard]] int commands_delivered() const { return delivered_; }

 private:
  Handler handler_;
  std::unique_ptr<LocalControlPlane> plane_;
  int sent_ = 0;
  int delivered_ = 0;
};

/// What a steering policy sees per visualized frame: the progress record
/// plus the frame's headline diagnostics (always available — they ride in
/// the frame metadata even when the field payload was not retained).
struct SteeringObservation {
  WallSeconds wall_time{};
  SimSeconds sim_time{};
  std::int64_t sequence = 0;
  double min_pressure_hpa = 0.0;
  double resolution_km = 0.0;
  bool nest_active = false;
};

/// A scientist stand-in: invoked at the visualization site for every frame;
/// may return a command to send upstream.
using SteeringPolicy =
    std::function<std::optional<SteeringCommand>(const SteeringObservation&)>;

}  // namespace adaptviz
