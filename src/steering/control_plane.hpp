// The unified control plane: one protocol for registration, observer
// attach/detach, steering and observation.
//
// PR 2's serving subsystem made viewer sessions passive replay/tail
// consumers and the original steering module was a one-way, single-channel
// command pipe. ISAAC-style in-situ designs close the loop instead:
// simulations *register* with a server, observers attach and detach
// dynamically while the run is live, and client metadata (view angle,
// resolution requests, "I need frames more often") flows back to the
// simulation. The `ControlPlane` interface below is that protocol; serve,
// steering, the campaign runner and the framework all speak it:
//
//  * register/deregister — a simulation announces itself under its run
//    label; one serve process fronts N registered runs at once
//    (serve/registration.hpp implements the multi-run server).
//  * attach/detach — an observer joins or leaves a registered run mid-run.
//  * steer — an inbound client event: a simulation command (pause, output
//    bounds, ...), a per-client view change (pan/zoom/field/colormap), or
//    a knob proposal surfaced to the decision algorithms.
//  * observe — the outbound direction: the simulation publishes a
//    per-visualized-frame observation to whoever is attached.
//
// Determinism: every inbound event is applied as a timestamped
// `SteeringEvent` record on a dedicated RNG-free stream. The applied
// stream can be saved to / replayed from `steering_log.jsonl`
// (exact-round-trip JSONL: hexfloat doubles, percent-encoded strings);
// replaying a recorded log reproduces the original run bit for bit,
// because event application is a pure function of (virtual wall time,
// payload) on the run's event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "resources/event_queue.hpp"
#include "steering/steering.hpp"

namespace adaptviz {

/// Stable handle for one attached client/observer. Handles are never
/// recycled: a ClientId stays valid (for stats/series queries) after the
/// client detaches, and re-attaching resumes the same handle.
struct ClientId {
  std::int64_t value = -1;

  [[nodiscard]] bool valid() const { return value >= 0; }
  friend bool operator==(ClientId a, ClientId b) { return a.value == b.value; }
  friend bool operator!=(ClientId a, ClientId b) { return a.value != b.value; }
};

/// Per-client view steering: what one observer wants rendered. Changing
/// any of these re-renders the client's current frame at the visualization
/// site; identical (frame, view) requests from different clients are
/// served by one render.
struct ViewCommand {
  std::string field = "default";     // diagnostic to render
  std::string colormap = "default";  // color mapping
  double zoom = 1.0;                 // magnification (> 0)
  double center_lat = 0.0;           // pan target, degrees
  double center_lon = 0.0;
};

/// Throws std::invalid_argument on a malformed view (zoom <= 0, pan target
/// off the globe, empty field/colormap).
void validate(const ViewCommand& view);

/// Canonical dedup key: two ViewCommands with the same key request the
/// same render. The default view maps to "" so default-view re-renders
/// share work exactly like the pre-control-plane cache-miss path.
std::string view_key(const ViewCommand& view);

/// Observer-driven knob proposal — the third decision input. Attached
/// observers may propose simulation knobs; the application manager
/// aggregates the strictest proposals into DecisionInput::observers and
/// tightens the bounds the algorithms work within. Zero values mean "no
/// opinion on that knob".
struct KnobProposal {
  SimSeconds max_output_interval{0.0};  // "frames at least this often"
  double resolution_floor_km = 0.0;     // "never refine below this"
  std::string reason;
};

/// Throws std::invalid_argument on negative proposal values.
void validate(const KnobProposal& proposal);

/// Observer session parameters carried by an attach event — plain data so
/// the steering layer stays independent of serve/ types. The framework
/// translates this into a ViewerConfig when the attach is applied.
struct ObserverSpec {
  std::string mode = "live-tail";  // "live-tail" | "catch-up"
  double downlink_mbps = 100.0;
  double catchup_start_hours = 0.0;
};

/// Throws std::invalid_argument on a malformed spec (unknown mode,
/// non-positive downlink, negative catch-up start).
void validate(const ObserverSpec& spec);

/// One timestamped record on the control plane's event stream — the unit
/// of the steering_log.jsonl format and the only way client input reaches
/// a run. RNG-free by construction: application is a pure function of
/// (wall, payload).
struct SteeringEvent {
  enum class Type { kCommand, kView, kProposal, kAttach, kDetach };

  /// Virtual wall time the event applies at the simulation site. For
  /// inbound live events this is stamped at delivery (drain time + channel
  /// latency); for scripted/replayed events it is the exact apply time.
  WallSeconds wall{0.0};
  /// Originating client name ("" = scripted / in-run policy).
  std::string client;
  Type type = Type::kCommand;

  SteeringCommand command{};  // kCommand
  ViewCommand view{};         // kView
  KnobProposal proposal{};    // kProposal
  ObserverSpec attach{};      // kAttach
};

const char* to_string(SteeringEvent::Type type);
SteeringEvent::Type steering_event_type_from(const std::string& name);

/// Validates the payload matching the event's type (and wall >= 0).
/// Throws std::invalid_argument naming the offending field.
void validate(const SteeringEvent& event);

// ---- steering_log.jsonl codec ----
//
// One event per line, a flat JSON object whose values are all strings:
// doubles travel as hexfloats (`%a`) and free-form strings are
// percent-encoded, so the round trip is exact and a line never contains a
// raw newline or quote. Example:
//
//   {"wall":"0x1.77p+12","client":"viewer000","type":"view",
//    "field":"pressure","colormap":"viridis","zoom":"0x1p+1",
//    "lat":"0x1.4p+4","lon":"0x1.6p+6"}

/// One JSONL line (no trailing newline).
std::string to_jsonl(const SteeringEvent& event);

/// Inverse of to_jsonl. Throws std::runtime_error naming the malformed
/// token; unknown keys are rejected.
SteeringEvent steering_event_from_jsonl(const std::string& line);

/// Writes one line per event (+ trailing newline). Throws
/// std::runtime_error when the file cannot be written.
void save_steering_log(const std::string& path,
                       const std::vector<SteeringEvent>& events);

/// Loads a steering_log.jsonl; blank lines are skipped. Throws
/// std::runtime_error on unreadable files or malformed lines.
std::vector<SteeringEvent> load_steering_log(const std::string& path);

// ---- The control-plane interface ----

class ControlPlane {
 public:
  /// Handle for one registered run.
  using RunId = std::int64_t;

  virtual ~ControlPlane() = default;

  /// A simulation announces itself under its (unique) run label. Throws
  /// std::invalid_argument when the label is already registered and live.
  virtual RunId register_run(const std::string& label) = 0;

  /// The run is over; its label becomes reusable. Idempotent.
  virtual void deregister_run(RunId run) = 0;

  /// An observer joins the run. The attach travels the event stream like
  /// any other client input (so it is recorded and replayable); the
  /// returned handle is the server-side identity used for detach().
  virtual ClientId attach(RunId run, const std::string& client,
                          const ObserverSpec& spec) = 0;

  /// The observer leaves. Also an event on the stream.
  virtual void detach(RunId run, ClientId client) = 0;

  /// Inbound client event. Validated here — malformed commands are
  /// rejected at the boundary and never reach the decision algorithms.
  virtual void steer(RunId run, SteeringEvent event) = 0;

  /// Outbound: the run publishes a per-visualized-frame observation.
  virtual void observe(RunId run, const SteeringObservation& obs) = 0;

  /// Run-side mailbox pull: events due at virtual time `now`, FIFO. A
  /// run's event loop drains its inbox periodically; implementations with
  /// no mailbox (the in-process plane applies directly) return {}.
  virtual std::vector<SteeringEvent> drain(RunId run, WallSeconds now) = 0;
};

/// In-process, single-run control plane: the authoritative applier of a
/// run's steering events. `steer()` delivers onto the run's event queue
/// one channel latency later (in order); every applied event lands in the
/// ApplyFn, which the framework uses to mutate state *and* record the
/// replayable log. `schedule_replay()` is the other half: it applies a
/// recorded event at exactly its logged wall time.
class LocalControlPlane : public ControlPlane {
 public:
  using ApplyFn = std::function<void(const SteeringEvent&)>;

  /// Throws std::invalid_argument on a null apply fn or negative latency.
  LocalControlPlane(EventQueue& queue, WallSeconds latency, ApplyFn apply);

  RunId register_run(const std::string& label) override;
  void deregister_run(RunId run) override;
  ClientId attach(RunId run, const std::string& client,
                  const ObserverSpec& spec) override;
  void detach(RunId run, ClientId client) override;
  void steer(RunId run, SteeringEvent event) override;
  void observe(RunId run, const SteeringObservation& obs) override;
  std::vector<SteeringEvent> drain(RunId, WallSeconds) override { return {}; }

  /// Convenience for command senders (the SteeringChannel shim and the
  /// in-run policy): wraps `command` in a kCommand event and steers it
  /// `extra_delay` from now (plus the channel latency).
  void send_command(SteeringCommand command,
                    WallSeconds extra_delay = WallSeconds(0.0));

  /// Applies `event` at exactly event.wall (no added latency) — the
  /// replay path for recorded logs.
  void schedule_replay(const SteeringEvent& event);

  /// Observation sinks invoked (in registration order) on observe().
  void add_observation_sink(std::function<void(const SteeringObservation&)> s);

  [[nodiscard]] int events_sent() const { return sent_; }
  [[nodiscard]] int events_applied() const { return applied_; }
  [[nodiscard]] WallSeconds latency() const { return latency_; }

  /// Registration and delivery bookkeeping. In-flight deliveries are
  /// pending queue events carrying their SteeringEvent by value, so they
  /// rewind with the EventQueue; the counters here make events_sent()/
  /// events_applied() consistent with the rewound stream.
  struct State {
    std::string label;
    bool registered = false;
    std::vector<std::string> names;
    WallSeconds last_delivery{0.0};
    int sent = 0;
    int applied = 0;
  };
  [[nodiscard]] State snapshot() const {
    return State{label_, registered_, names_, last_delivery_, sent_, applied_};
  }
  void restore(const State& s) {
    label_ = s.label;
    registered_ = s.registered;
    names_ = s.names;
    last_delivery_ = s.last_delivery;
    sent_ = s.sent;
    applied_ = s.applied;
  }

 private:
  void schedule_apply(WallSeconds at, SteeringEvent event);

  EventQueue& queue_;
  WallSeconds latency_;
  ApplyFn apply_;
  std::vector<std::function<void(const SteeringObservation&)>> sinks_;
  std::string label_;
  bool registered_ = false;
  std::vector<std::string> names_;  // client id -> name (ids are indices)
  // In-order delivery even if latency were ever made variable.
  WallSeconds last_delivery_{0.0};
  int sent_ = 0;
  int applied_ = 0;
};

}  // namespace adaptviz
