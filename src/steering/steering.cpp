#include "steering/steering.hpp"

#include <stdexcept>
#include <utility>

#include "steering/control_plane.hpp"

namespace adaptviz {

const char* to_string(SteeringCommand::Kind kind) {
  switch (kind) {
    case SteeringCommand::Kind::kSetOutputBounds:
      return "set-output-bounds";
    case SteeringCommand::Kind::kSetResolutionFloor:
      return "set-resolution-floor";
    case SteeringCommand::Kind::kSetNestExtent:
      return "set-nest-extent";
    case SteeringCommand::Kind::kPause:
      return "pause";
    case SteeringCommand::Kind::kResume:
      return "resume";
  }
  return "?";
}

void validate(const SteeringCommand& command) {
  switch (command.kind) {
    case SteeringCommand::Kind::kSetOutputBounds:
      if (command.bounds.min_output_interval.seconds() <= 0) {
        throw std::invalid_argument(
            "steering command: non-positive min_output_interval");
      }
      if (command.bounds.min_output_interval >
          command.bounds.max_output_interval) {
        throw std::invalid_argument(
            "steering command: inverted output-interval bounds");
      }
      break;
    case SteeringCommand::Kind::kSetResolutionFloor:
      if (command.resolution_floor_km < 0) {
        throw std::invalid_argument(
            "steering command: negative resolution_floor_km");
      }
      break;
    case SteeringCommand::Kind::kSetNestExtent:
      if (command.nest_extent_deg < 0) {
        throw std::invalid_argument(
            "steering command: negative nest_extent_deg");
      }
      break;
    case SteeringCommand::Kind::kPause:
      if (command.auto_resume_after.seconds() < 0) {
        throw std::invalid_argument(
            "steering command: negative auto_resume_after");
      }
      break;
    case SteeringCommand::Kind::kResume:
      break;
  }
}

SteeringChannel::SteeringChannel(EventQueue& queue, WallSeconds latency,
                                 Handler handler)
    : handler_(std::move(handler)) {
  if (!handler_) throw std::invalid_argument("SteeringChannel: null handler");
  if (latency.seconds() < 0) {
    throw std::invalid_argument("SteeringChannel: negative latency");
  }
  plane_ = std::make_unique<LocalControlPlane>(
      queue, latency, [this](const SteeringEvent& event) {
        ++delivered_;
        handler_(event.command);
      });
}

SteeringChannel::~SteeringChannel() = default;

void SteeringChannel::send(SteeringCommand command) {
  send_after(WallSeconds(0.0), std::move(command));
}

void SteeringChannel::send_after(WallSeconds extra_delay,
                                 SteeringCommand command) {
  if (extra_delay.seconds() < 0) {
    throw std::invalid_argument("SteeringChannel: negative delay");
  }
  // Counted only once the plane accepts it: a command rejected by
  // validation was never sent.
  plane_->send_command(std::move(command), extra_delay);
  ++sent_;
}

}  // namespace adaptviz
