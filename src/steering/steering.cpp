#include "steering/steering.hpp"

#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace adaptviz {

const char* to_string(SteeringCommand::Kind kind) {
  switch (kind) {
    case SteeringCommand::Kind::kSetOutputBounds:
      return "set-output-bounds";
    case SteeringCommand::Kind::kSetResolutionFloor:
      return "set-resolution-floor";
    case SteeringCommand::Kind::kSetNestExtent:
      return "set-nest-extent";
    case SteeringCommand::Kind::kPause:
      return "pause";
    case SteeringCommand::Kind::kResume:
      return "resume";
  }
  return "?";
}

SteeringChannel::SteeringChannel(EventQueue& queue, WallSeconds latency,
                                 Handler handler)
    : queue_(queue), latency_(latency), handler_(std::move(handler)) {
  if (!handler_) throw std::invalid_argument("SteeringChannel: null handler");
  if (latency_.seconds() < 0) {
    throw std::invalid_argument("SteeringChannel: negative latency");
  }
}

void SteeringChannel::send(SteeringCommand command) {
  send_after(WallSeconds(0.0), std::move(command));
}

void SteeringChannel::send_after(WallSeconds extra_delay,
                                 SteeringCommand command) {
  if (extra_delay.seconds() < 0) {
    throw std::invalid_argument("SteeringChannel: negative delay");
  }
  ++sent_;
  WallSeconds deliver_at = queue_.now() + extra_delay + latency_;
  if (deliver_at < last_delivery_) deliver_at = last_delivery_;  // in order
  last_delivery_ = deliver_at;
  ADAPTVIZ_LOG_INFO("steering", "[%s] %s queued (%s)",
                    hh_mm(queue_.now()).c_str(), to_string(command.kind),
                    command.reason.c_str());
  queue_.schedule_at(
      deliver_at,
      [this, command = std::move(command)] {
        ++delivered_;
        handler_(command);
      },
      "steering.deliver");
}

}  // namespace adaptviz
