#include "lp/problem.hpp"

#include <sstream>
#include <stdexcept>

namespace adaptviz::lp {

int Problem::add_variable(std::string name, double lower, double upper,
                          double objective) {
  if (lower > upper) {
    throw std::invalid_argument("lp: variable '" + name +
                                "' has lower > upper");
  }
  variables_.push_back(
      Variable{std::move(name), lower, upper, objective});
  return static_cast<int>(variables_.size()) - 1;
}

void Problem::add_constraint(std::string name,
                             std::vector<std::pair<int, double>> terms,
                             Relation relation, double rhs) {
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    if (var < 0 || var >= variable_count()) {
      throw std::invalid_argument("lp: constraint '" + name +
                                  "' references unknown variable");
    }
  }
  constraints_.push_back(
      Constraint{std::move(name), std::move(terms), relation, rhs});
}

void Problem::set_objective(int var, double coefficient) {
  if (var < 0 || var >= variable_count()) {
    throw std::invalid_argument("lp: set_objective on unknown variable");
  }
  variables_[static_cast<size_t>(var)].objective = coefficient;
}

const Variable& Problem::variable(int i) const {
  return variables_.at(static_cast<size_t>(i));
}

const Constraint& Problem::constraint(int i) const {
  return constraints_.at(static_cast<size_t>(i));
}

std::string Problem::str() const {
  std::ostringstream out;
  out << "minimize ";
  bool first = true;
  for (const auto& v : variables_) {
    if (v.objective == 0.0) continue;
    if (!first) out << " + ";
    out << v.objective << "*" << v.name;
    first = false;
  }
  if (first) out << "0";
  out << "\nsubject to\n";
  for (const auto& c : constraints_) {
    out << "  " << c.name << ": ";
    for (size_t i = 0; i < c.terms.size(); ++i) {
      if (i) out << " + ";
      out << c.terms[i].second << "*"
          << variables_[static_cast<size_t>(c.terms[i].first)].name;
    }
    switch (c.relation) {
      case Relation::kLessEqual:
        out << " <= ";
        break;
      case Relation::kGreaterEqual:
        out << " >= ";
        break;
      case Relation::kEqual:
        out << " = ";
        break;
    }
    out << c.rhs << "\n";
  }
  out << "bounds\n";
  for (const auto& v : variables_) {
    out << "  " << v.lower << " <= " << v.name << " <= " << v.upper << "\n";
  }
  return out.str();
}

}  // namespace adaptviz::lp
