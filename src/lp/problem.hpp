// Linear-program model builder.
//
// Stands in for GLPK (the paper solves its Section IV-B formulation with
// GLPK, which is not available offline). The interface is deliberately
// GLPK-shaped: named variables with bounds, named linear constraints with a
// relation and right-hand side, and a minimization objective.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace adaptviz::lp {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// Marker for an unbounded-above variable.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
};

struct Constraint {
  std::string name;
  std::vector<std::pair<int, double>> terms;  // (variable index, coefficient)
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

class Problem {
 public:
  /// Adds a variable with bounds [lower, upper] and objective coefficient;
  /// returns its index. Throws std::invalid_argument on lower > upper.
  int add_variable(std::string name, double lower = 0.0,
                   double upper = kInfinity, double objective = 0.0);

  /// Adds `sum coeff*var  relation  rhs`. Variable indices must be valid.
  void add_constraint(std::string name,
                      std::vector<std::pair<int, double>> terms,
                      Relation relation, double rhs);

  void set_objective(int var, double coefficient);

  [[nodiscard]] int variable_count() const {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int constraint_count() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Variable& variable(int i) const;
  [[nodiscard]] const Constraint& constraint(int i) const;

  /// Human-readable dump of the model, for logging/debugging.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace adaptviz::lp
