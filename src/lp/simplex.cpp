#include "lp/simplex.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace adaptviz::lp {
namespace {

constexpr double kEps = 1e-9;

// Dense (m+1) x (n+1) tableau: rows 0..m-1 are constraints with the rhs in
// the last column; row m is the reduced-cost row. basis[i] is the column
// basic in row i.
struct Tableau {
  std::vector<std::vector<double>> t;
  std::vector<int> basis;
  int m = 0;
  int n = 0;

  double& at(int r, int c) { return t[static_cast<size_t>(r)][static_cast<size_t>(c)]; }
  double at(int r, int c) const {
    return t[static_cast<size_t>(r)][static_cast<size_t>(c)];
  }

  void pivot(int row, int col) {
    const double p = at(row, col);
    auto& prow = t[static_cast<size_t>(row)];
    for (double& v : prow) v /= p;
    for (int r = 0; r <= m; ++r) {
      if (r == row) continue;
      const double f = at(r, col);
      if (std::fabs(f) < 1e-14) continue;
      auto& rr = t[static_cast<size_t>(r)];
      for (int c = 0; c <= n; ++c) rr[static_cast<size_t>(c)] -= f * prow[static_cast<size_t>(c)];
    }
    basis[static_cast<size_t>(row)] = col;
  }

  // Rebuilds the reduced-cost row for cost vector `cost` (size n) by pricing
  // out the basic columns.
  void price(const std::vector<double>& cost) {
    auto& z = t[static_cast<size_t>(m)];
    for (int c = 0; c <= n; ++c) {
      z[static_cast<size_t>(c)] = c < n ? cost[static_cast<size_t>(c)] : 0.0;
    }
    for (int r = 0; r < m; ++r) {
      const double cb = cost[static_cast<size_t>(basis[static_cast<size_t>(r)])];
      if (cb == 0.0) continue;
      for (int c = 0; c <= n; ++c) z[static_cast<size_t>(c)] -= cb * at(r, c);
    }
  }

  // Runs primal simplex with Bland's rule over columns [0, limit).
  // Returns false on unboundedness.
  bool optimize(int limit) {
    const int kMaxIters = 50000;
    for (int iter = 0; iter < kMaxIters; ++iter) {
      // Entering: smallest-index column with negative reduced cost.
      int col = -1;
      for (int c = 0; c < limit; ++c) {
        if (at(m, c) < -kEps) {
          col = c;
          break;
        }
      }
      if (col < 0) return true;  // optimal
      // Leaving: Bland ratio test.
      int row = -1;
      double best = 0.0;
      for (int r = 0; r < m; ++r) {
        const double a = at(r, col);
        if (a > kEps) {
          const double ratio = at(r, n) / a;
          if (row < 0 || ratio < best - kEps ||
              (ratio < best + kEps &&
               basis[static_cast<size_t>(r)] < basis[static_cast<size_t>(row)])) {
            row = r;
            best = ratio;
          }
        }
      }
      if (row < 0) return false;  // unbounded
      pivot(row, col);
    }
    throw std::runtime_error("lp: simplex iteration limit exceeded");
  }
};

// Per structural variable: how it maps onto the non-negative tableau
// columns. value = shift + x[pos] - x[neg].
struct VarMap {
  int pos = -1;
  int neg = -1;
  double shift = 0.0;
};

}  // namespace

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

Solution solve(const Problem& problem) {
  const int nvars = problem.variable_count();

  // --- 1. Map structural variables onto shifted non-negative columns. ---
  std::vector<VarMap> vmap(static_cast<size_t>(nvars));
  int ncols = 0;
  for (int v = 0; v < nvars; ++v) {
    const Variable& var = problem.variable(v);
    if (std::isinf(var.lower) && var.lower < 0) {
      vmap[static_cast<size_t>(v)].pos = ncols++;
      vmap[static_cast<size_t>(v)].neg = ncols++;
      vmap[static_cast<size_t>(v)].shift = 0.0;
    } else {
      vmap[static_cast<size_t>(v)].pos = ncols++;
      vmap[static_cast<size_t>(v)].shift = var.lower;
    }
  }
  const int nstruct_cols = ncols;

  // --- 2. Collect rows: user constraints plus finite upper bounds. ---
  struct Row {
    std::vector<double> a;  // size nstruct_cols
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  for (int i = 0; i < problem.constraint_count(); ++i) {
    const Constraint& c = problem.constraint(i);
    Row row{std::vector<double>(static_cast<size_t>(nstruct_cols), 0.0),
            c.relation, c.rhs};
    for (const auto& [v, coeff] : c.terms) {
      const VarMap& vm = vmap[static_cast<size_t>(v)];
      row.a[static_cast<size_t>(vm.pos)] += coeff;
      if (vm.neg >= 0) row.a[static_cast<size_t>(vm.neg)] -= coeff;
      row.rhs -= coeff * vm.shift;
    }
    rows.push_back(std::move(row));
  }
  for (int v = 0; v < nvars; ++v) {
    const Variable& var = problem.variable(v);
    if (std::isinf(var.upper)) continue;
    const VarMap& vm = vmap[static_cast<size_t>(v)];
    Row row{std::vector<double>(static_cast<size_t>(nstruct_cols), 0.0),
            Relation::kLessEqual, var.upper - vm.shift};
    row.a[static_cast<size_t>(vm.pos)] = 1.0;
    if (vm.neg >= 0) row.a[static_cast<size_t>(vm.neg)] = -1.0;
    rows.push_back(std::move(row));
  }

  // Normalize rhs >= 0.
  for (Row& r : rows) {
    if (r.rhs < 0.0) {
      for (double& a : r.a) a = -a;
      r.rhs = -r.rhs;
      r.rel = r.rel == Relation::kLessEqual ? Relation::kGreaterEqual
              : r.rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                                 : Relation::kEqual;
    }
  }

  // --- 3. Assemble the tableau with slack/surplus/artificial columns. ---
  const int m = static_cast<int>(rows.size());
  int nslack = 0;
  int nart = 0;
  for (const Row& r : rows) {
    if (r.rel != Relation::kEqual) ++nslack;
    if (r.rel != Relation::kLessEqual) ++nart;
  }
  const int n = nstruct_cols + nslack + nart;
  const int art_begin = nstruct_cols + nslack;

  Tableau tab;
  tab.m = m;
  tab.n = n;
  tab.t.assign(static_cast<size_t>(m + 1),
               std::vector<double>(static_cast<size_t>(n + 1), 0.0));
  tab.basis.assign(static_cast<size_t>(m), -1);

  int slack_col = nstruct_cols;
  int art_col = art_begin;
  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<size_t>(r)];
    for (int c = 0; c < nstruct_cols; ++c) {
      tab.at(r, c) = row.a[static_cast<size_t>(c)];
    }
    tab.at(r, n) = row.rhs;
    switch (row.rel) {
      case Relation::kLessEqual:
        tab.at(r, slack_col) = 1.0;
        tab.basis[static_cast<size_t>(r)] = slack_col++;
        break;
      case Relation::kGreaterEqual:
        tab.at(r, slack_col) = -1.0;
        ++slack_col;
        tab.at(r, art_col) = 1.0;
        tab.basis[static_cast<size_t>(r)] = art_col++;
        break;
      case Relation::kEqual:
        tab.at(r, art_col) = 1.0;
        tab.basis[static_cast<size_t>(r)] = art_col++;
        break;
    }
  }

  Solution sol;

  // --- 4. Phase 1: minimize the sum of artificials. ---
  if (nart > 0) {
    std::vector<double> cost1(static_cast<size_t>(n), 0.0);
    for (int c = art_begin; c < n; ++c) cost1[static_cast<size_t>(c)] = 1.0;
    tab.price(cost1);
    if (!tab.optimize(n)) {
      // Phase-1 objective is bounded below by zero; unbounded means a bug.
      throw std::runtime_error("lp: phase-1 reported unbounded");
    }
    double art_sum = 0.0;
    for (int r = 0; r < m; ++r) {
      if (tab.basis[static_cast<size_t>(r)] >= art_begin) {
        art_sum += tab.at(r, n);
      }
    }
    if (art_sum > 1e-7) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Drive any degenerate artificial out of the basis.
    for (int r = 0; r < m; ++r) {
      if (tab.basis[static_cast<size_t>(r)] < art_begin) continue;
      int col = -1;
      for (int c = 0; c < art_begin; ++c) {
        if (std::fabs(tab.at(r, c)) > kEps) {
          col = c;
          break;
        }
      }
      if (col >= 0) tab.pivot(r, col);
      // Otherwise the row is redundant; the artificial stays basic at zero
      // and, with its column never eligible below, stays at zero.
    }
  }

  // --- 5. Phase 2 with the real objective over non-artificial columns. ---
  std::vector<double> cost2(static_cast<size_t>(n), 0.0);
  double obj_shift = 0.0;
  for (int v = 0; v < nvars; ++v) {
    const Variable& var = problem.variable(v);
    const VarMap& vm = vmap[static_cast<size_t>(v)];
    cost2[static_cast<size_t>(vm.pos)] += var.objective;
    if (vm.neg >= 0) cost2[static_cast<size_t>(vm.neg)] -= var.objective;
    obj_shift += var.objective * vm.shift;
  }
  tab.price(cost2);
  if (!tab.optimize(art_begin)) {
    sol.status = SolveStatus::kUnbounded;
    return sol;
  }

  // --- 6. Extract structural values. ---
  std::vector<double> colval(static_cast<size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    colval[static_cast<size_t>(tab.basis[static_cast<size_t>(r)])] =
        tab.at(r, n);
  }
  sol.values.resize(static_cast<size_t>(nvars));
  sol.objective = obj_shift;
  for (int v = 0; v < nvars; ++v) {
    const VarMap& vm = vmap[static_cast<size_t>(v)];
    double x = vm.shift + colval[static_cast<size_t>(vm.pos)];
    if (vm.neg >= 0) x -= colval[static_cast<size_t>(vm.neg)];
    sol.values[static_cast<size_t>(v)] = x;
    sol.objective += problem.variable(v).objective * (x - vm.shift);
  }
  sol.status = SolveStatus::kOptimal;
  return sol;
}

}  // namespace adaptviz::lp
