// Two-phase primal simplex over a dense tableau.
//
// Scope: the framework's decision LP has three structural variables and a
// handful of rows, so a dense tableau with Bland's anti-cycling rule is both
// simple and exact enough. General variable bounds are handled by shifting
// (x = lower + x') and by materializing finite upper bounds as rows.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace adaptviz::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded };

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  /// Value per structural variable, indexed as in the Problem.
  std::vector<double> values;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
};

const char* to_string(SolveStatus s);

/// Minimizes the problem's objective. Never throws for well-formed models;
/// infeasibility and unboundedness are reported through the status.
Solution solve(const Problem& problem);

}  // namespace adaptviz::lp
