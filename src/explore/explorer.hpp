// Adversarial scenario explorer: snapshot/backtrack tree search over what
// the environment can do to a run.
//
// The adaptive framework's claim is qualitative robustness: whatever the
// WAN, the disk, or competing jobs do, the decision layer keeps the
// simulation progressing and the visualization continuous. The explorer
// turns that claim into a checked property. At every application-manager
// decision boundary the *adversary* picks one discretized action —
// a bandwidth collapse, a transfer-failure burst, a disk shock, or
// nothing — producing a tree of futures. The explorer walks that tree
// depth-first:
//
//  * snapshot/backtrack — one AdaptiveFramework instance is driven with
//    the stepwise API (start_run/step_once); at each boundary the whole
//    ExperimentState is captured once and restored per candidate action,
//    so a branch costs only its own segment instead of a re-execution
//    from t = 0 (bench_explore gates the speedup);
//  * branch-and-bound — the adversary minimizes final simulation
//    progress; progress is monotone in virtual time, so a node whose
//    current progress already matches the worst leaf found cannot improve
//    it and is pruned (reported, so coverage loss is never silent);
//  * invariant checks after every event — delivered frames form exactly
//    the sequence 0,1,2,... (the sender never loses, duplicates or
//    reorders a frame), the disk never exceeds its capacity, the greedy
//    algorithm never lets the simulation stall, and the LP's decisions
//    stay inside the configured output-interval bounds. An invariant
//    failure is recorded with the exact adversary plan that produced it,
//    and replaying that plan through a plain `[adversary]` scenario
//    reproduces the branch bit for bit (tests/test_explore.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/framework.hpp"
#include "util/ini.hpp"

namespace adaptviz {

/// Discretization of the adversary's choices and the search budget
/// ([explore] scenario section; see explore_spec_from_ini).
struct ExploreSpec {
  /// Decision boundaries the adversary may act at (tree depth).
  int max_depth = 3;
  /// Cap on evaluated leaves across the whole search.
  int max_branches = 64;
  /// Candidate kBandwidthDrop magnitudes (each multiplies the link's
  /// current efficiency).
  std::vector<double> bandwidth_drop_tiers;
  /// Candidate kFailureBurst per-transfer failure probabilities.
  std::vector<double> failure_burst_levels;
  /// Candidate kDiskShock fractions of disk capacity.
  std::vector<double> disk_shock_fractions;
  /// Include the do-nothing branch at every boundary.
  bool include_none = true;
  /// Branch-and-bound pruning on worst-case simulation progress. Pruned
  /// subtrees are not scanned for invariant violations (reported in
  /// ExploreReport::pruned).
  bool prune = true;
  /// false = re-execute every node from t = 0 instead of restoring a
  /// snapshot: the naive baseline bench_explore compares against. The
  /// report is identical either way.
  bool use_snapshots = true;
};

/// Throws std::invalid_argument naming the offending field.
void validate(const ExploreSpec& spec);

/// One invariant failure, addressed by the exact adversary path that
/// produced it.
struct Violation {
  std::string invariant;  // "frame-stream" | "disk-cap" | "greedy-stall" |
                          // "lp-bounds"
  std::string detail;
  AdversaryPlan plan;     // replay via [adversary] plan = to_string(plan)
  WallSeconds wall{};     // virtual time of first detection
};

struct ExploreReport {
  int nodes_explored = 0;
  int leaves_evaluated = 0;
  int pruned = 0;
  bool branch_cap_hit = false;
  std::vector<Violation> violations;
  /// Worst (minimum) final simulation progress over evaluated leaves and
  /// the plan achieving it.
  SimSeconds worst_progress{0.0};
  AdversaryPlan worst_plan;
  /// Baseline: the no-adversary leaf's final progress (always evaluated
  /// first when include_none is set).
  SimSeconds baseline_progress{0.0};
};

/// Renders the report as a human-readable multi-line summary.
std::string to_string(const ExploreReport& report);

class ScenarioExplorer {
 public:
  /// `config.adversary` must be empty (the explorer owns the plan) and the
  /// scenario must not configure subsystems without snapshot support (the
  /// [tree] edge cache, an external control plane) when use_snapshots is
  /// set. Throws std::invalid_argument / std::logic_error otherwise.
  ScenarioExplorer(ExperimentConfig config, ExploreSpec spec);

  /// Runs the full search and returns the report.
  ExploreReport explore();

 private:
  class Walk;

  ExperimentConfig config_;
  ExploreSpec spec_;
};

/// Parses the [explore] section:
///
///   [explore]
///   max_depth = 3
///   max_branches = 64
///   bandwidth_drop_tiers = 0.25 0.5    ; whitespace-separated magnitudes
///   failure_burst_levels = 0.3
///   disk_shock_fractions = 0.9
///   include_none = true
///   prune = true
///
/// Absent keys keep ExploreSpec defaults; an absent section returns the
/// default spec. Lives here (not scenario.cpp) so core does not depend on
/// the explorer.
ExploreSpec explore_spec_from_ini(const IniDocument& doc);

}  // namespace adaptviz
