#include "explore/explorer.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace adaptviz {

namespace {

void validate_magnitudes(const std::vector<double>& values, double lo,
                         bool lo_open, const char* field) {
  for (double v : values) {
    const bool ok = (lo_open ? v > lo : v >= lo) && v <= 1.0;
    if (!ok) {
      throw std::invalid_argument(std::string("ExploreSpec: ") + field +
                                  " values must be in " +
                                  (lo_open ? "(0, 1]" : "[0, 1]"));
    }
  }
}

std::vector<double> parse_double_list(const std::string& text,
                                      const char* key) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      throw std::runtime_error(std::string("scenario: explore.") + key +
                               ": bad number '" + token + "'");
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace

void validate(const ExploreSpec& spec) {
  if (spec.max_depth < 1) {
    throw std::invalid_argument("ExploreSpec: max_depth must be >= 1");
  }
  if (spec.max_branches < 1) {
    throw std::invalid_argument("ExploreSpec: max_branches must be >= 1");
  }
  validate_magnitudes(spec.bandwidth_drop_tiers, 0.0, true,
                      "bandwidth_drop_tiers");
  validate_magnitudes(spec.failure_burst_levels, 0.0, false,
                      "failure_burst_levels");
  validate_magnitudes(spec.disk_shock_fractions, 0.0, true,
                      "disk_shock_fractions");
  const std::size_t actions = spec.bandwidth_drop_tiers.size() +
                              spec.failure_burst_levels.size() +
                              spec.disk_shock_fractions.size();
  if (!spec.include_none && actions == 0) {
    throw std::invalid_argument(
        "ExploreSpec: no candidate actions and include_none is off — "
        "the tree would be empty");
  }
}

std::string to_string(const ExploreReport& report) {
  std::string out = format(
      "explore: %d nodes, %d leaves, %d pruned%s, %zu violation(s)\n"
      "  baseline progress: %.2f sim-h\n"
      "  worst progress:    %.2f sim-h  (plan: %s)\n",
      report.nodes_explored, report.leaves_evaluated, report.pruned,
      report.branch_cap_hit ? " (branch cap hit)" : "",
      report.violations.size(), report.baseline_progress.as_hours(),
      report.worst_progress.as_hours(),
      report.worst_plan.empty() ? "<none>"
                                : to_string(report.worst_plan).c_str());
  for (const Violation& v : report.violations) {
    out += format("  violation [%s] at wall %.2f h under plan '%s': %s\n",
                  v.invariant.c_str(), v.wall.as_hours(),
                  to_string(v.plan).c_str(), v.detail.c_str());
  }
  return out;
}

ExploreSpec explore_spec_from_ini(const IniDocument& doc) {
  ExploreSpec spec;
  if (!doc.has_section("explore")) return spec;
  if (auto v = doc.get_int("explore", "max_depth")) {
    spec.max_depth = static_cast<int>(*v);
  }
  if (auto v = doc.get_int("explore", "max_branches")) {
    spec.max_branches = static_cast<int>(*v);
  }
  if (auto v = doc.get("explore", "bandwidth_drop_tiers")) {
    spec.bandwidth_drop_tiers = parse_double_list(*v, "bandwidth_drop_tiers");
  }
  if (auto v = doc.get("explore", "failure_burst_levels")) {
    spec.failure_burst_levels = parse_double_list(*v, "failure_burst_levels");
  }
  if (auto v = doc.get("explore", "disk_shock_fractions")) {
    spec.disk_shock_fractions = parse_double_list(*v, "disk_shock_fractions");
  }
  if (auto v = doc.get_bool("explore", "include_none")) {
    spec.include_none = *v;
  }
  if (auto v = doc.get_bool("explore", "prune")) spec.prune = *v;
  if (auto v = doc.get_bool("explore", "use_snapshots")) {
    spec.use_snapshots = *v;
  }
  validate(spec);
  return spec;
}

/// One depth-first search over the adversary tree. Owns the incumbent
/// bound and the violation dedup set; writes everything into the report.
class ScenarioExplorer::Walk {
 public:
  Walk(const ExperimentConfig& config, const ExploreSpec& spec,
       ExploreReport& report)
      : config_(config), spec_(spec), report_(report) {}

  void run() {
    std::unique_ptr<AdaptiveFramework> fw = make_fw({});
    fw->start_run();
    ++report_.nodes_explored;
    check(*fw, {});
    dfs(*fw, {}, 0);
  }

 private:
  struct Candidate {
    bool none = false;
    AdversaryAction action{};
  };

  [[nodiscard]] std::vector<Candidate> candidates(int depth) const {
    std::vector<Candidate> out;
    if (spec_.include_none) out.push_back(Candidate{true, {}});
    for (double m : spec_.bandwidth_drop_tiers) {
      out.push_back(Candidate{
          false, {depth, AdversaryActionKind::kBandwidthDrop, m}});
    }
    for (double m : spec_.failure_burst_levels) {
      out.push_back(
          Candidate{false, {depth, AdversaryActionKind::kFailureBurst, m}});
    }
    for (double m : spec_.disk_shock_fractions) {
      out.push_back(
          Candidate{false, {depth, AdversaryActionKind::kDiskShock, m}});
    }
    return out;
  }

  std::unique_ptr<AdaptiveFramework> make_fw(const AdversaryPlan& plan) {
    ExperimentConfig cfg = config_;
    cfg.adversary = plan;
    return std::make_unique<AdaptiveFramework>(std::move(cfg));
  }

  /// Steps until the manager has made `target` decisions. Returns false
  /// when the run ends first.
  bool advance_to(AdaptiveFramework& fw, int target, bool check_invariants,
                  const AdversaryPlan& plan) {
    while (fw.decisions_made() < target) {
      if (!fw.step_once()) return false;
      if (check_invariants) check(fw, plan);
    }
    return true;
  }

  /// `fw` is positioned at boundary `depth` (decision `depth` just made,
  /// adversary slot `depth` still open) under `plan`.
  void dfs(AdaptiveFramework& fw, const AdversaryPlan& plan, int depth) {
    if (depth >= spec_.max_depth) {
      finish_branch(fw, plan);
      return;
    }
    if (spec_.prune && have_incumbent_ &&
        fw.process().sim_time() >= incumbent_) {
      // Progress is monotone: every leaf below this node finishes at or
      // above the current progress, which already matches the worst leaf
      // found. Nothing below can lower the bound.
      ++report_.pruned;
      return;
    }
    std::optional<ExperimentState> state;
    if (spec_.use_snapshots) state = fw.snapshot();
    for (const Candidate& cand : candidates(depth)) {
      if (report_.leaves_evaluated >= spec_.max_branches) {
        report_.branch_cap_hit = true;
        break;
      }
      AdversaryPlan next = plan;
      if (!cand.none) next.push_back(cand.action);

      std::unique_ptr<AdaptiveFramework> fresh;
      AdaptiveFramework* cur = &fw;
      if (spec_.use_snapshots) {
        fw.restore(*state);
        if (!cand.none) fw.set_adversary_plan(next);
      } else {
        // Naive baseline: re-execute from t = 0 (full construction,
        // profiling sweep included — that is the honest cost of not
        // having checkpoints). The prefix repositioning is silent: the
        // parent already invariant-checked that trajectory.
        fresh = make_fw(next);
        fresh->start_run();
        advance_to(*fresh, depth + 1, /*check_invariants=*/false, next);
        cur = fresh.get();
      }
      ++report_.nodes_explored;
      // The action itself may already violate (a disk shock against a
      // nearly-full disk), before any further event runs.
      if (!cand.none) check(*cur, next);
      if (advance_to(*cur, depth + 2, /*check_invariants=*/true, next)) {
        dfs(*cur, next, depth + 1);
      } else {
        evaluate_leaf(*cur, next);  // run ended inside this segment
      }
    }
  }

  /// Past max_depth: run the branch to its end, checking throughout.
  void finish_branch(AdaptiveFramework& fw, const AdversaryPlan& plan) {
    while (fw.step_once()) check(fw, plan);
    evaluate_leaf(fw, plan);
  }

  void evaluate_leaf(AdaptiveFramework& fw, const AdversaryPlan& plan) {
    ++report_.leaves_evaluated;
    const SimSeconds progress = fw.process().sim_time();
    if (plan.empty()) report_.baseline_progress = progress;
    if (!have_incumbent_ || progress < incumbent_) {
      have_incumbent_ = true;
      incumbent_ = progress;
      report_.worst_progress = progress;
      report_.worst_plan = plan;
    }
  }

  void check(AdaptiveFramework& fw, const AdversaryPlan& plan) {
    // Delivered stream is exactly 0,1,2,...: one visualization record may
    // be appended per event, so checking the newest suffices inductively
    // (restore rewinds to an already-checked prefix).
    const std::vector<VisRecord>& recs = fw.vis().records();
    if (!recs.empty() &&
        recs.back().sequence !=
            static_cast<std::int64_t>(recs.size()) - 1) {
      record(fw, plan, "frame-stream",
             format("record %zu carries sequence %lld", recs.size() - 1,
                    static_cast<long long>(recs.back().sequence)));
    }
    if (fw.disk().used() > fw.disk().capacity()) {
      record(fw, plan, "disk-cap",
             format("used %s exceeds capacity %s",
                    to_string(fw.disk().used()).c_str(),
                    to_string(fw.disk().capacity()).c_str()));
    }
    if (fw.config().algorithm == AlgorithmKind::kGreedyThreshold &&
        fw.process().stalled()) {
      record(fw, plan, "greedy-stall",
             format("simulation stalled at sim %.2f h",
                    fw.process().sim_time().as_hours()));
    }
    if (fw.config().algorithm == AlgorithmKind::kOptimization &&
        !fw.manager().decisions().empty()) {
      const Decision& d = fw.manager().decisions().back().decision;
      const DecisionBounds& b = fw.config().bounds;
      constexpr double kEps = 1e-6;
      if (d.output_interval.seconds() <
              b.min_output_interval.seconds() - kEps ||
          d.output_interval.seconds() >
              b.max_output_interval.seconds() + kEps) {
        record(fw, plan, "lp-bounds",
               format("decision OI %.2f min outside [%.2f, %.2f]",
                      d.output_interval.as_minutes(),
                      b.min_output_interval.as_minutes(),
                      b.max_output_interval.as_minutes()));
      }
    }
  }

  void record(AdaptiveFramework& fw, const AdversaryPlan& plan,
              const char* invariant, std::string detail) {
    // One report per (invariant, plan): a persisting condition (an open
    // stall) would otherwise flood the report at every event.
    const std::string key = std::string(invariant) + "|" + to_string(plan);
    if (!seen_.insert(key).second) return;
    Violation v;
    v.invariant = invariant;
    v.detail = std::move(detail);
    v.plan = plan;
    v.wall = fw.queue().now();
    ADAPTVIZ_LOG_WARN("explore", "violation [%s] under '%s': %s", invariant,
                      to_string(plan).c_str(), v.detail.c_str());
    report_.violations.push_back(std::move(v));
  }

  const ExperimentConfig& config_;
  const ExploreSpec& spec_;
  ExploreReport& report_;
  bool have_incumbent_ = false;
  SimSeconds incumbent_{std::numeric_limits<double>::infinity()};
  std::set<std::string> seen_;
};

ScenarioExplorer::ScenarioExplorer(ExperimentConfig config, ExploreSpec spec)
    : config_(std::move(config)), spec_(std::move(spec)) {
  validate(spec_);
  if (!config_.adversary.empty()) {
    throw std::invalid_argument(
        "ScenarioExplorer: config.adversary must be empty — the explorer "
        "owns the plan (replay an explored plan through a plain run)");
  }
  if (spec_.use_snapshots && config_.serve.tree.enabled()) {
    throw std::logic_error(
        "ScenarioExplorer: the [tree] edge cache does not support "
        "snapshot/restore");
  }
  if (spec_.use_snapshots && config_.steering.control_plane != nullptr) {
    throw std::logic_error(
        "ScenarioExplorer: an external control plane does not support "
        "snapshot/restore");
  }
}

ExploreReport ScenarioExplorer::explore() {
  ExploreReport report;
  Walk(config_, spec_, report).run();
  return report;
}

}  // namespace adaptviz
